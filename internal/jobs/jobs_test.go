package jobs

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"frontier/internal/core"
	"frontier/internal/crawl"
	"frontier/internal/gen"
	"frontier/internal/graph"
	"frontier/internal/live"
	"frontier/internal/xrand"
)

func testGraph(seed uint64) *graph.Graph {
	return gen.BarabasiAlbert(xrand.New(seed), 2000, 3)
}

// waitStatus polls until pred holds or the deadline passes.
func waitStatus(t *testing.T, j *Job, pred func(Status) bool, what string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := j.Status()
		if pred(st) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last status %+v", what, j.Status())
	return Status{}
}

func waitDone(t *testing.T, j *Job) Status {
	t.Helper()
	st := waitStatus(t, j, func(s Status) bool { return s.State.Terminal() }, "terminal state")
	if st.State != StateDone {
		t.Fatalf("job %s ended %s (%s), want done", st.ID, st.State, st.Error)
	}
	return st
}

// directRun reproduces a job's exact computation in-process: same
// sampler, same session, same live-runtime arithmetic, same hash.
func directRun(t *testing.T, g *graph.Graph, sp Spec) Status {
	t.Helper()
	sp.normalize()
	method, err := DefaultMethods().resolve(sp.Method)
	if err != nil {
		t.Fatal(err)
	}
	sampler := method.Build(sp)
	sess := crawl.NewSession(g, sp.Budget, crawl.UnitCosts(), xrand.New(sp.Seed))
	rt, err := newRuntime(live.Default(), sp, g)
	if err != nil {
		t.Fatal(err)
	}
	tracker, _ := sampler.(core.WalkerTracker)
	var edges int64
	var hash uint64 = fnvOffset
	if err := sampler.RunObs(sess, func(o core.Observation) {
		hash = hashEdge(hash, o.U, o.V)
		edges++
		walker := 0
		if tracker != nil {
			walker = tracker.LastWalker()
		}
		rt.ObserveSample(walker, o)
	}); err != nil {
		t.Fatal(err)
	}
	est := rt.Estimator().Value()
	st := Status{Edges: edges, EdgeHash: fmt.Sprintf("%016x", hash), Spent: sess.Stats().Spent}
	if !math.IsNaN(est) {
		st.Estimate = &est
	}
	return st
}

// TestConcurrentJobsIndependentEstimates is the acceptance test: 8
// concurrent jobs through a 4-worker pool over one shared graph, all
// finishing with correct, independent estimates — each identical to an
// uninterrupted in-process run with the same seed.
func TestConcurrentJobsIndependentEstimates(t *testing.T) {
	g := testGraph(1)
	m, err := NewManager(g, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	specs := make([]Spec, 8)
	js := make([]*Job, 8)
	for i := range specs {
		method := []string{"fs", "dfs", "single", "multiple"}[i%4]
		est := "avgdegree"
		if i%2 == 1 {
			est = "clustering"
		}
		specs[i] = Spec{Method: method, M: 8, Budget: 3000, Seed: uint64(100 + i), Estimate: est}
		j, err := m.Submit(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		js[i] = j
	}
	for i, j := range js {
		got := waitDone(t, j)
		want := directRun(t, g, specs[i])
		if got.Edges != want.Edges || got.EdgeHash != want.EdgeHash {
			t.Fatalf("job %d (%s): %d edges hash %s, direct run %d edges hash %s",
				i, specs[i].Method, got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
		}
		if got.Estimate == nil || want.Estimate == nil {
			t.Fatalf("job %d: missing estimate (%v vs %v)", i, got.Estimate, want.Estimate)
		}
		if *got.Estimate != *want.Estimate {
			t.Fatalf("job %d: estimate %v, direct run %v", i, *got.Estimate, *want.Estimate)
		}
		if got.Spent != want.Spent {
			t.Fatalf("job %d: spent %v, direct run %v", i, got.Spent, want.Spent)
		}
	}
	if n := m.ActiveJobs(); n != 0 {
		t.Fatalf("ActiveJobs = %d after all jobs finished", n)
	}
}

// slowSource wraps a Source, throttling neighbor queries so tests can
// interrupt a run mid-flight deterministically. It deliberately does
// not implement BatchSource or EdgeView.
type slowSource struct {
	g     crawl.Source
	delay time.Duration
}

func (s *slowSource) NumVertices() int    { return s.g.NumVertices() }
func (s *slowSource) SymDegree(v int) int { return s.g.SymDegree(v) }
func (s *slowSource) SymNeighbor(v, i int) int {
	time.Sleep(s.delay)
	return s.g.SymNeighbor(v, i)
}

// TestCancelFreesWorker cancels a long job on a single-worker pool and
// checks the worker promptly picks up the next job, unaffected.
func TestCancelFreesWorker(t *testing.T) {
	g := testGraph(2)
	slow := &slowSource{g: g, delay: 500 * time.Microsecond}
	m, err := NewManager(slow, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	long, err := m.Submit(Spec{Method: "single", Budget: 1e6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	quick, err := m.Submit(Spec{Method: "single", Budget: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, long, func(s Status) bool { return s.State == StateRunning }, "long job running")
	if err := m.Cancel(long.ID()); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, long, func(s Status) bool { return s.State == StateCancelled }, "long job cancelled")
	st := waitDone(t, quick)
	want := directRun(t, g, Spec{Method: "single", Budget: 50, Seed: 4})
	if st.EdgeHash != want.EdgeHash {
		t.Fatalf("quick job after cancel: hash %s, want %s", st.EdgeHash, want.EdgeHash)
	}
}

// TestPauseRestartResumeDeterminism is the acceptance test for the
// checkpoint path: a job paused mid-run, its manager stopped, and a new
// manager started over the same checkpoint directory (a graphd restart)
// finishes with exactly the edge count, sequence hash, budget and
// estimate of an uninterrupted run.
func TestPauseRestartResumeDeterminism(t *testing.T) {
	g := testGraph(5)
	spec := Spec{Method: "fs", M: 16, Budget: 4000, Seed: 9, CheckpointEvery: 64}
	want := directRun(t, g, spec)

	dir := t.TempDir()
	slow := &slowSource{g: g, delay: 100 * time.Microsecond}
	m1, err := NewManager(slow, WithWorkers(1), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let it pass at least one checkpoint, then pause and shut down.
	waitStatus(t, j, func(s Status) bool { return s.Edges >= 64 }, "first checkpoint")
	if err := m1.Pause(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, func(s Status) bool { return s.State == StatePaused }, "paused")
	mid := j.Status()
	if mid.Edges >= want.Edges {
		t.Fatalf("job already finished (%d edges) before pause; can't test resume", mid.Edges)
	}
	m1.Stop()

	// "Restart graphd": a fresh manager over the same directory requeues
	// the paused job automatically and runs it to completion.
	m2, err := NewManager(slow, WithWorkers(1), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	j2, ok := m2.Get(j.ID())
	if !ok {
		t.Fatalf("job %s not reloaded from %s", j.ID(), dir)
	}
	got := waitDone(t, j2)
	if got.Edges != want.Edges || got.EdgeHash != want.EdgeHash {
		t.Fatalf("resumed run: %d edges hash %s; uninterrupted: %d edges hash %s",
			got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
	}
	if *got.Estimate != *want.Estimate {
		t.Fatalf("resumed estimate %v, uninterrupted %v", *got.Estimate, *want.Estimate)
	}
	if got.Spent != want.Spent {
		t.Fatalf("resumed spent %v, uninterrupted %v", got.Spent, want.Spent)
	}
}

// TestStopRequeuesRunningJobs: stopping a manager checkpoints running
// jobs; a successor finishes them correctly.
func TestStopRequeuesRunningJobs(t *testing.T) {
	g := testGraph(6)
	spec := Spec{Method: "multiple", M: 4, Budget: 3000, Seed: 11, CheckpointEvery: 32}
	want := directRun(t, g, spec)

	dir := t.TempDir()
	slow := &slowSource{g: g, delay: 100 * time.Microsecond}
	m1, err := NewManager(slow, WithWorkers(2), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, func(s Status) bool { return s.Edges >= 32 }, "first checkpoint")
	m1.Stop() // pauses the running job at its next step boundary

	m2, err := NewManager(slow, WithWorkers(2), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	j2, ok := m2.Get(j.ID())
	if !ok {
		t.Fatal("job lost across restart")
	}
	got := waitDone(t, j2)
	if got.EdgeHash != want.EdgeHash || got.Edges != want.Edges {
		t.Fatalf("restart run diverged: %d edges %s vs %d edges %s",
			got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
	}
}

func TestSubmitValidation(t *testing.T) {
	g := testGraph(7)
	m, err := NewManager(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	for _, sp := range []Spec{
		{Method: "bogus", Budget: 10},
		{Method: "fs", Budget: 0},
		{Method: "fs", Budget: 10, Estimate: "nonsense"},
	} {
		if _, err := m.Submit(sp); err == nil {
			t.Fatalf("spec %+v must be rejected", sp)
		}
	}
	// Clustering needs an EdgeView; a bare Source cannot serve it.
	bare, err := NewManager(&slowSource{g: g}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Stop()
	if _, err := bare.Submit(Spec{Method: "fs", Budget: 10, Estimate: "clustering"}); err == nil {
		t.Fatal("clustering over a bare Source must be rejected")
	}
}

func TestStateMachineEdges(t *testing.T) {
	g := testGraph(8)
	m, err := NewManager(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel("job-999999"); err == nil {
		t.Fatal("cancelling an unknown job must error")
	}
	j, err := m.Submit(Spec{Method: "single", Budget: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	// Terminal jobs: cancel is a no-op, pause/resume are errors.
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	if got := j.Status(); got.State != StateDone {
		t.Fatalf("cancel of done job changed state to %s", got.State)
	}
	if err := m.Pause(j.ID()); err == nil {
		t.Fatal("pausing a done job must error")
	}
	if err := m.Resume(j.ID()); err == nil {
		t.Fatal("resuming a done job must error")
	}
	if st.Edges == 0 {
		t.Fatal("done job sampled nothing")
	}
	m.Stop()
	if _, err := m.Submit(Spec{Method: "single", Budget: 10}); err != ErrStopped {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
}

// TestJobsAreResumableSamplersOnly pins that every registered method
// builds a core.ObservationSampler (compile-time via Method.Build's
// return type) and that the default registry carries the paper's full
// comparison set.
func TestJobsAreResumableSamplersOnly(t *testing.T) {
	want := []string{"dfs", "fs", "jump", "mhrw", "multiple", "re", "rv", "single"}
	got := DefaultMethods().Names()
	if len(got) != len(want) {
		t.Fatalf("DefaultMethods().Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultMethods().Names() = %v, want %v", got, want)
		}
	}
	for _, method := range got {
		m, ok := DefaultMethods().Get(method)
		if !ok {
			t.Fatalf("%s: not registered", method)
		}
		var s core.ObservationSampler = m.Build(Spec{Method: method, M: 2, JumpProb: 0.1})
		if s == nil {
			t.Fatalf("%s: no sampler", method)
		}
	}
}

// TestSubmitValidationEnumeratesEstimators: the unknown-estimate error
// is driven by the live registry and names every registered estimator.
func TestSubmitValidationEnumeratesEstimators(t *testing.T) {
	g := testGraph(9)
	m, err := NewManager(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	_, err = m.Submit(Spec{Method: "fs", Budget: 10, Estimate: "nonsense"})
	if err == nil {
		t.Fatal("unknown estimate must be rejected")
	}
	for _, name := range live.Default().Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("estimate error %q does not enumerate %q", err, name)
		}
	}
	// A bad stop rule is rejected at submission too.
	if _, err := m.Submit(Spec{Method: "fs", Budget: 10, StopRule: "ess<=1"}); err == nil {
		t.Fatal("wrong-direction stop rule must be rejected")
	}
}

// TestBatchedDriveMatchesDirectRun pins the manager's batched drive:
// every method without walker attribution (driven through
// RunObsBatch) finishes with the edge count, FNV hash, estimate and
// budget spend of an unbatched in-process run with the same seed —
// the jobs-layer face of the core equivalence contract. Budgets are
// sized to cross slab boundaries so multi-slab emission is exercised.
func TestBatchedDriveMatchesDirectRun(t *testing.T) {
	g := testGraph(2)
	m, err := NewManager(g, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	specs := []Spec{
		{Method: "single", Budget: 2000, Seed: 201, Estimate: "clustering"},
		{Method: "mhrw", Budget: 2000, Seed: 202, Estimate: "avgdegree"},
		{Method: "rv", Budget: 1500, Seed: 203, Estimate: "avgdegree"},
		{Method: "re", Budget: 2400, Seed: 204, Estimate: "clustering"},
		{Method: "jump", JumpProb: 0.15, Budget: 2000, Seed: 205, Estimate: "avgdegree"},
	}
	for _, sp := range specs {
		t.Run(sp.Method, func(t *testing.T) {
			method, err := DefaultMethods().resolve(sp.Method)
			if err != nil {
				t.Fatal(err)
			}
			if method.UsesWalkers {
				t.Fatalf("method %s tracks walkers; it belongs in the per-observation drive", sp.Method)
			}
			j, err := m.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			got := waitDone(t, j)
			want := directRun(t, g, sp)
			if got.Edges != want.Edges || got.EdgeHash != want.EdgeHash {
				t.Fatalf("batched job: %d observations hash %s, direct unbatched run %d hash %s",
					got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
			}
			if got.Estimate == nil || want.Estimate == nil || *got.Estimate != *want.Estimate {
				t.Fatalf("estimate %v, direct run %v", got.Estimate, want.Estimate)
			}
			if got.Spent != want.Spent {
				t.Fatalf("spent %v, direct run %v", got.Spent, want.Spent)
			}
		})
	}
}

// TestRestoredDoneJobKeepsEstimateReport: a done job reloaded from its
// checkpoint must still answer EstimateReport with the exact report it
// published as it finished — the done checkpoint carries the final
// live-runtime state, and rehydrating it is what keeps the estimates
// endpoint and sweep reattachment working across a process restart.
// Before this was fixed, a restored done job reported "no estimates
// yet", and a sweep resuming across a hard restart silently aggregated
// its figure without the job's estimand vector.
func TestRestoredDoneJobKeepsEstimateReport(t *testing.T) {
	g := testGraph(11)
	spec := Spec{Method: "multiple", M: 2, Budget: 40, Seed: 17, Estimate: "degreedist"}

	dir := t.TempDir()
	m1, err := NewManager(g, WithWorkers(1), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	want, wantSeq, ok := j.EstimateReport()
	if !ok || want.Vector == nil {
		t.Fatalf("pre-restart report = (%+v, %v); want a vector report", want, ok)
	}
	m1.Stop()

	m2, err := NewManager(g, WithWorkers(1), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	j2, found := m2.Get(j.ID())
	if !found {
		t.Fatalf("job %s not reloaded from %s", j.ID(), dir)
	}
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("reloaded job state %s, want done", st.State)
	}
	got, gotSeq, ok := j2.EstimateReport()
	if !ok {
		t.Fatal("reloaded done job has no estimate report")
	}
	if gotSeq != wantSeq {
		t.Fatalf("estimate-update counter %d, want %d (rehydration must not bump it)", gotSeq, wantSeq)
	}
	if got.Observations != want.Observations || !reflect.DeepEqual(got.Vector, want.Vector) {
		t.Fatalf("rehydrated report differs:\n got %+v\nwant %+v", got, want)
	}
	if (got.Value == nil) != (want.Value == nil) || (got.Value != nil && *got.Value != *want.Value) {
		t.Fatalf("rehydrated value %v, want %v", got.Value, want.Value)
	}
}
