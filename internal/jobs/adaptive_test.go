package jobs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// adaptiveSpec is the shared acceptance-test spec: a generous budget
// with a CI-half-width stop rule loose enough to fire long before the
// budget is gone on a well-connected graph.
func adaptiveSpec() Spec {
	return Spec{
		Method: "fs", M: 16, Budget: 60000, Seed: 41,
		Estimate: "avgdegree", StopRule: "ci_halfwidth<=0.25",
		CheckpointEvery: 64,
	}
}

// TestAdaptiveStopHaltsBeforeBudget is the tentpole acceptance test: a
// job with a ci_halfwidth stop rule on a generated graph halts before
// its step budget is exhausted with a correct stop reason, while the
// same job without a stop rule runs to budget.
func TestAdaptiveStopHaltsBeforeBudget(t *testing.T) {
	g := testGraph(40)
	m, err := NewManager(g, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	adaptive := adaptiveSpec()
	j, err := m.Submit(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, j)
	if !strings.Contains(got.StopReason, "converged") || !strings.Contains(got.StopReason, "ci_halfwidth") {
		t.Fatalf("adaptive job stop reason = %q, want a ci_halfwidth convergence reason", got.StopReason)
	}
	if got.Spent >= adaptive.Budget {
		t.Fatalf("adaptive job spent its whole budget (%v of %v) despite converging", got.Spent, adaptive.Budget)
	}
	if got.Estimate == nil {
		t.Fatal("adaptive job finished without an estimate")
	}
	if got.EstimateUpdates == 0 {
		t.Fatal("adaptive job published no estimate updates")
	}
	rep, seq, ok := j.EstimateReport()
	if !ok || seq != got.EstimateUpdates {
		t.Fatalf("EstimateReport = (%+v, %d, %v)", rep, seq, ok)
	}
	if !rep.Converged || rep.CI == nil || rep.CI.HalfWidth > 0.25 {
		t.Fatalf("final report = %+v, want converged with half-width <= 0.25", rep)
	}
	// The estimate should be near the truth — stopping early must not
	// mean stopping wrong. (±0.5 is ~2x the certified CI.)
	truth := float64(g.NumSymEdges()) / float64(g.NumVertices())
	if *got.Estimate < truth-0.5 || *got.Estimate > truth+0.5 {
		t.Fatalf("adaptive estimate %v far from truth %v", *got.Estimate, truth)
	}

	// Same spec, no stop rule: runs to budget.
	budgetOnly := adaptive
	budgetOnly.StopRule = ""
	jb, err := m.Submit(budgetOnly)
	if err != nil {
		t.Fatal(err)
	}
	gotB := waitDone(t, jb)
	if gotB.StopReason != StopReasonBudget {
		t.Fatalf("budget-only job stop reason = %q, want %q", gotB.StopReason, StopReasonBudget)
	}
	want := directRun(t, g, budgetOnly)
	if gotB.Edges != want.Edges || gotB.Spent != want.Spent {
		t.Fatalf("budget-only job: %d edges spent %v; direct run %d edges spent %v",
			gotB.Edges, gotB.Spent, want.Edges, want.Spent)
	}
	if gotB.Edges <= got.Edges {
		t.Fatalf("budget-only run (%d edges) not longer than adaptive run (%d edges)", gotB.Edges, got.Edges)
	}
}

// finalLiveState returns a done job's checkpointed live-runtime bytes.
func finalLiveState(t *testing.T, j *Job) []byte {
	t.Helper()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cp == nil || len(j.cp.Live) == 0 {
		t.Fatalf("job %s has no live checkpoint state", j.id)
	}
	return append([]byte(nil), j.cp.Live...)
}

// TestAdaptivePauseResumeByteIdenticalLiveState extends the
// checkpoint-hash determinism test to the live subsystem: an adaptive
// job paused mid-run, reloaded by a fresh manager (a graphd restart)
// and run to its convergence stop reports byte-identical estimator and
// monitor state — and the same hash, edges, estimate and stop reason —
// as the same job run uninterrupted.
func TestAdaptivePauseResumeByteIdenticalLiveState(t *testing.T) {
	g := testGraph(42)
	spec := adaptiveSpec()
	spec.Seed = 43

	// Uninterrupted reference run through a manager of its own.
	mRef, err := NewManager(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mRef.Stop()
	jRef, err := mRef.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, jRef)
	if !strings.Contains(want.StopReason, "converged") {
		t.Fatalf("reference run stop reason %q; the rule must fire for this test to bite", want.StopReason)
	}
	wantLive := finalLiveState(t, jRef)

	// Interrupted run: pause after the first checkpoint, restart the
	// manager over the same directory, let it resume to convergence.
	dir := t.TempDir()
	slow := &slowSource{g: g, delay: 50 * time.Microsecond}
	m1, err := NewManager(slow, WithWorkers(1), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, func(s Status) bool { return s.Edges >= 64 }, "first checkpoint")
	if err := m1.Pause(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, func(s Status) bool { return s.State == StatePaused }, "paused")
	if mid := j.Status(); mid.State != StatePaused || mid.Edges >= want.Edges {
		t.Fatalf("paused too late (%d edges, reference stopped at %d)", mid.Edges, want.Edges)
	}
	m1.Stop()

	m2, err := NewManager(slow, WithWorkers(1), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	j2, ok := m2.Get(j.ID())
	if !ok {
		t.Fatalf("job %s not reloaded from %s", j.ID(), dir)
	}
	got := waitDone(t, j2)

	if got.Edges != want.Edges || got.EdgeHash != want.EdgeHash {
		t.Fatalf("resumed adaptive run: %d edges hash %s; uninterrupted: %d edges hash %s",
			got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
	}
	if *got.Estimate != *want.Estimate {
		t.Fatalf("resumed estimate %v, uninterrupted %v", *got.Estimate, *want.Estimate)
	}
	if got.StopReason != want.StopReason {
		t.Fatalf("resumed stop reason %q, uninterrupted %q", got.StopReason, want.StopReason)
	}
	gotLive := finalLiveState(t, j2)
	if !bytes.Equal(gotLive, wantLive) {
		t.Fatalf("live state diverged across pause/resume:\n resumed %s\n direct  %s", gotLive, wantLive)
	}
}
