package jobs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"frontier/internal/core"
	"frontier/internal/crawl"
)

// Method describes one registered sampling method: how to build its
// resumable sampler from a spec, plus the source facets it requires
// and the observation kinds it emits — what spec validation checks a
// submission against. The built-in methods are the paper's full
// comparison set; Register adds custom ones.
type Method struct {
	// Name is the Spec.Method string that selects the method.
	Name string
	// Build constructs a fresh sampler for a normalized spec. The
	// sampler's Snapshot/Restore state rides the job checkpoint, so a
	// method is resumable by construction.
	Build func(sp Spec) core.ObservationSampler
	// EmitsEdges reports whether the method's observation stream
	// contains edge observations. Edge-level estimands (clustering,
	// assortativity) are rejected at submission on methods that emit
	// none.
	EmitsEdges bool
	// NeedsEdgeSource marks methods that draw uniform random edges and
	// therefore need a source implementing crawl.EdgeSource.
	NeedsEdgeSource bool
	// UsesWalkers reports whether Spec.M (the walker count) applies.
	UsesWalkers bool
	// UsesJumpProb reports whether Spec.JumpProb applies; submissions
	// carrying a non-zero JumpProb for any other method are rejected
	// rather than silently ignored.
	UsesJumpProb bool
}

// MethodRegistry is a named set of sampling methods: the catalog of
// what a job service can run. The zero value is unusable; build one
// with NewMethodRegistry. Safe for concurrent use.
type MethodRegistry struct {
	mu      sync.RWMutex
	methods map[string]Method
}

// defaultMethods backs DefaultMethods.
var defaultMethods = NewMethodRegistry()

// DefaultMethods returns the process-wide method registry holding the
// paper's comparison set: "fs", "dfs", "single", "multiple", "mhrw",
// "rv", "re" and "jump". Managers validate and build job samplers
// against it unless configured otherwise (WithMethods).
func DefaultMethods() *MethodRegistry { return defaultMethods }

// NewMethodRegistry returns a registry pre-populated with the built-in
// methods. Register adds custom ones.
func NewMethodRegistry() *MethodRegistry {
	r := &MethodRegistry{methods: make(map[string]Method)}
	must := func(m Method) {
		if err := r.Register(m); err != nil {
			panic(err)
		}
	}
	must(Method{
		Name:        "fs",
		Build:       func(sp Spec) core.ObservationSampler { return &core.FrontierSampler{M: sp.M} },
		EmitsEdges:  true,
		UsesWalkers: true,
	})
	must(Method{
		Name:        "dfs",
		Build:       func(sp Spec) core.ObservationSampler { return &core.DistributedFS{M: sp.M} },
		EmitsEdges:  true,
		UsesWalkers: true,
	})
	must(Method{
		Name:       "single",
		Build:      func(sp Spec) core.ObservationSampler { return &core.SingleRW{} },
		EmitsEdges: true,
	})
	must(Method{
		Name:        "multiple",
		Build:       func(sp Spec) core.ObservationSampler { return &core.MultipleRW{M: sp.M} },
		EmitsEdges:  true,
		UsesWalkers: true,
	})
	must(Method{
		Name:  "mhrw",
		Build: func(sp Spec) core.ObservationSampler { return &core.MetropolisRW{} },
	})
	must(Method{
		Name:  "rv",
		Build: func(sp Spec) core.ObservationSampler { return &core.RandomVertexSampler{} },
	})
	must(Method{
		Name:            "re",
		Build:           func(sp Spec) core.ObservationSampler { return &core.RandomEdgeSampler{} },
		EmitsEdges:      true,
		NeedsEdgeSource: true,
	})
	must(Method{
		Name:         "jump",
		Build:        func(sp Spec) core.ObservationSampler { return &core.JumpRW{JumpProb: sp.JumpProb} },
		EmitsEdges:   true,
		UsesJumpProb: true,
	})
	return r
}

// Register adds a method. Duplicate and empty names, and nil builders,
// are rejected.
func (r *MethodRegistry) Register(m Method) error {
	if m.Name == "" {
		return errors.New("jobs: method name must not be empty")
	}
	if m.Build == nil {
		return fmt.Errorf("jobs: method %q has no builder", m.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.methods[m.Name]; dup {
		return fmt.Errorf("jobs: method %q already registered", m.Name)
	}
	r.methods[m.Name] = m
	return nil
}

// Names returns the registered method names, sorted — what a
// validation error enumerates.
func (r *MethodRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.methods))
	for name := range r.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns the named method.
func (r *MethodRegistry) Get(name string) (Method, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.methods[name]
	return m, ok
}

// resolve returns the named method or the teaching error every bad
// submission gets: the full list of what the service can run.
func (r *MethodRegistry) resolve(name string) (Method, error) {
	m, ok := r.Get(name)
	if !ok {
		return Method{}, fmt.Errorf("jobs: unknown method %q (registered: %s)", name, strings.Join(r.Names(), ", "))
	}
	return m, nil
}

// validateSpec checks the method-specific parts of a spec against a
// resolved source.
func (m Method) validateSpec(sp Spec, src crawl.Source) error {
	if m.NeedsEdgeSource {
		if _, ok := src.(crawl.EdgeSource); !ok {
			return fmt.Errorf("jobs: method %q needs uniform edge queries (crawl.EdgeSource), which the graph does not support", m.Name)
		}
	}
	if m.UsesJumpProb {
		if sp.JumpProb < 0 || sp.JumpProb >= 1 {
			return fmt.Errorf("jobs: method %q needs jump_prob in [0,1), got %g", m.Name, sp.JumpProb)
		}
	} else if sp.JumpProb != 0 {
		return fmt.Errorf("jobs: jump_prob does not apply to method %q", m.Name)
	}
	return nil
}
