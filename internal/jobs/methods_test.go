package jobs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"frontier/internal/core"
	"frontier/internal/graph"
)

// TestAllMethodsRunAsJobs submits one job per registered method over a
// shared graph and checks every one finishes done with exactly the
// edges, hash, estimate and spend of an uninterrupted in-process run —
// the determinism contract now covers the whole comparison set.
func TestAllMethodsRunAsJobs(t *testing.T) {
	g := testGraph(50)
	m, err := NewManager(g, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	specs := []Spec{
		{Method: "fs", M: 8, Budget: 3000, Seed: 501},
		{Method: "dfs", M: 8, Budget: 300, Seed: 502},
		{Method: "single", Budget: 3000, Seed: 503},
		{Method: "multiple", M: 4, Budget: 3000, Seed: 504},
		{Method: "mhrw", Budget: 3000, Seed: 505},
		{Method: "rv", Budget: 3000, Seed: 506, Estimate: "degreedist"},
		{Method: "re", Budget: 3000, Seed: 507, Estimate: "clustering"},
		{Method: "jump", JumpProb: 0.2, Budget: 3000, Seed: 508},
	}
	js := make([]*Job, len(specs))
	for i, sp := range specs {
		j, err := m.Submit(sp)
		if err != nil {
			t.Fatalf("%s: %v", sp.Method, err)
		}
		js[i] = j
	}
	for i, j := range js {
		got := waitDone(t, j)
		want := directRun(t, g, specs[i])
		if got.Edges != want.Edges || got.EdgeHash != want.EdgeHash {
			t.Fatalf("%s: %d obs hash %s, direct run %d obs hash %s",
				specs[i].Method, got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
		}
		if got.Estimate == nil || want.Estimate == nil || *got.Estimate != *want.Estimate {
			t.Fatalf("%s: estimate %v, direct run %v", specs[i].Method, got.Estimate, want.Estimate)
		}
		if got.Spent != want.Spent {
			t.Fatalf("%s: spent %v, direct run %v", specs[i].Method, got.Spent, want.Spent)
		}
	}
}

// TestMethodValidation pins the method registry's teaching errors:
// unknown methods enumerate the roster, vertex methods reject
// edge-level estimands, re demands edge queries, and jump_prob is
// range-checked and method-gated.
func TestMethodValidation(t *testing.T) {
	g := testGraph(51)
	m, err := NewManager(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	_, err = m.Submit(Spec{Method: "bogus", Budget: 10})
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("unknown method error = %v", err)
	}
	for _, name := range DefaultMethods().Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("method error %q does not enumerate %q", err, name)
		}
	}

	// Vertex-emitting methods cannot feed edge-level estimands.
	for _, method := range []string{"mhrw", "rv"} {
		for _, est := range []string{"clustering", "assortativity"} {
			_, err := m.Submit(Spec{Method: method, Budget: 10, Estimate: est})
			if err == nil || !strings.Contains(err.Error(), "edge observations") {
				t.Fatalf("%s+%s: error = %v, want edge-observations rejection", method, est, err)
			}
		}
		// The same methods are fine with vertex-level estimands.
		if _, err := m.Submit(Spec{Method: method, Budget: 10, Estimate: "degreedist"}); err != nil {
			t.Fatalf("%s+degreedist: %v", method, err)
		}
	}

	// jump_prob: range-checked on jump, rejected elsewhere.
	if _, err := m.Submit(Spec{Method: "jump", JumpProb: 1.0, Budget: 10}); err == nil {
		t.Fatal("jump_prob 1.0 must be rejected")
	}
	if _, err := m.Submit(Spec{Method: "jump", JumpProb: -0.1, Budget: 10}); err == nil {
		t.Fatal("negative jump_prob must be rejected")
	}
	if _, err := m.Submit(Spec{Method: "fs", JumpProb: 0.3, Budget: 10}); err == nil ||
		!strings.Contains(err.Error(), "jump_prob") {
		t.Fatalf("jump_prob on fs: error = %v, want rejection", err)
	}
	if _, err := m.Submit(Spec{Method: "jump", JumpProb: 0.3, Budget: 10}); err != nil {
		t.Fatalf("valid jump spec rejected: %v", err)
	}
}

// bareNoEdgeSource strips a graph down to crawl.Source, hiding the
// uniform edge queries re needs.
type bareNoEdgeSource struct{ g *graph.Graph }

func (b bareNoEdgeSource) NumVertices() int         { return b.g.NumVertices() }
func (b bareNoEdgeSource) SymDegree(v int) int      { return b.g.SymDegree(v) }
func (b bareNoEdgeSource) SymNeighbor(v, i int) int { return b.g.SymNeighbor(v, i) }

// TestRandomEdgeNeedsEdgeSource: submitting re over a source without
// uniform edge queries is rejected at validation, not at run time.
func TestRandomEdgeNeedsEdgeSource(t *testing.T) {
	g := testGraph(52)
	m, err := NewManager(bareNoEdgeSource{g: g}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	_, err = m.Submit(Spec{Method: "re", Budget: 10})
	if err == nil || !strings.Contains(err.Error(), "EdgeSource") {
		t.Fatalf("re over bare source: error = %v, want EdgeSource rejection", err)
	}
	// The walk methods still run over the bare source.
	if _, err := m.Submit(Spec{Method: "single", Budget: 10}); err != nil {
		t.Fatalf("single over bare source: %v", err)
	}
}

// TestCustomMethodRegistration hosts a custom method on one manager
// via WithMethods without touching the process-wide registry.
func TestCustomMethodRegistration(t *testing.T) {
	reg := NewMethodRegistry()
	dupe := Method{Name: "jump", Build: func(sp Spec) core.ObservationSampler { return &core.SingleRW{} }}
	if err := reg.Register(dupe); err == nil {
		t.Fatal("duplicate method registration must error")
	}
	if err := reg.Register(Method{Name: ""}); err == nil {
		t.Fatal("empty method name must error")
	}
	if err := reg.Register(Method{Name: "nobuilder"}); err == nil {
		t.Fatal("nil builder must error")
	}
	custom := Method{
		Name:       "lazy-rw",
		Build:      func(sp Spec) core.ObservationSampler { return &core.SingleRW{} },
		EmitsEdges: true,
	}
	if err := reg.Register(custom); err != nil {
		t.Fatal(err)
	}

	g := testGraph(53)
	m, err := NewManager(g, WithWorkers(1), WithMethods(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	j, err := m.Submit(Spec{Method: "lazy-rw", Budget: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, j)
	// The custom name builds a SingleRW, so it must match a "single" run.
	want := directRun(t, g, Spec{Method: "single", Budget: 500, Seed: 9})
	if got.EdgeHash != want.EdgeHash || got.Edges != want.Edges {
		t.Fatalf("custom method: %d obs hash %s; single: %d obs hash %s",
			got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
	}
	// The process-wide registry is untouched.
	if _, ok := DefaultMethods().Get("lazy-rw"); ok {
		t.Fatal("custom method leaked into DefaultMethods")
	}
}

// TestMHRWAndJumpPauseResumeByteIdenticalLiveState is the acceptance
// test for the newly-resumable methods: an adaptive MHRW (and jump)
// job paused mid-run, reloaded by a fresh manager and run to
// completion reports byte-identical estimator and monitor state — and
// the same hash, observation count, estimate and stop reason — as the
// same job run uninterrupted.
func TestMHRWAndJumpPauseResumeByteIdenticalLiveState(t *testing.T) {
	for _, spec := range []Spec{
		{Method: "mhrw", Budget: 60000, Seed: 61, Estimate: "avgdegree",
			StopRule: "ci_halfwidth<=0.25", CheckpointEvery: 64},
		{Method: "jump", JumpProb: 0.15, Budget: 60000, Seed: 62, Estimate: "avgdegree",
			StopRule: "ci_halfwidth<=0.25", CheckpointEvery: 64},
	} {
		t.Run(spec.Method, func(t *testing.T) {
			g := testGraph(60)

			mRef, err := NewManager(g, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			defer mRef.Stop()
			jRef, err := mRef.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			want := waitDone(t, jRef)
			if !strings.Contains(want.StopReason, "converged") {
				t.Fatalf("reference run stop reason %q; the rule must fire for this test to bite", want.StopReason)
			}
			wantLive := finalLiveState(t, jRef)

			dir := t.TempDir()
			slow := &slowSource{g: g, delay: 50 * time.Microsecond}
			m1, err := NewManager(slow, WithWorkers(1), WithCheckpointDir(dir))
			if err != nil {
				t.Fatal(err)
			}
			j, err := m1.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			waitStatus(t, j, func(s Status) bool { return s.Edges >= 64 }, "first checkpoint")
			if err := m1.Pause(j.ID()); err != nil {
				t.Fatal(err)
			}
			waitStatus(t, j, func(s Status) bool { return s.State == StatePaused }, "paused")
			m1.Stop()

			m2, err := NewManager(slow, WithWorkers(1), WithCheckpointDir(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Stop()
			j2, ok := m2.Get(j.ID())
			if !ok {
				t.Fatalf("job %s not reloaded", j.ID())
			}
			got := waitDone(t, j2)

			if got.Edges != want.Edges || got.EdgeHash != want.EdgeHash {
				t.Fatalf("resumed: %d obs hash %s; uninterrupted: %d obs hash %s",
					got.Edges, got.EdgeHash, want.Edges, want.EdgeHash)
			}
			if *got.Estimate != *want.Estimate {
				t.Fatalf("resumed estimate %v, uninterrupted %v", *got.Estimate, *want.Estimate)
			}
			if got.StopReason != want.StopReason {
				t.Fatalf("resumed stop reason %q, uninterrupted %q", got.StopReason, want.StopReason)
			}
			gotLive := finalLiveState(t, j2)
			if !bytes.Equal(gotLive, wantLive) {
				t.Fatalf("live state diverged across pause/resume:\n resumed %s\n direct  %s", gotLive, wantLive)
			}
		})
	}
}
