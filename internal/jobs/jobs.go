// Package jobs runs many sampling jobs concurrently over one or more
// shared graphs: a bounded worker pool drains a queue of job specs, each
// job drives a resumable sampler (internal/core) through its own
// budgeted, cancellable session (internal/crawl), and every job
// checkpoints its full state — session, sampler, live estimation
// runtime and observation hash — as JSON at step boundaries, so jobs
// survive a process restart and continue byte-identically.
//
// Methods come from a MethodRegistry (name → builder + required source
// facets): the built-in set is the paper's full comparison roster —
// the degree-proportional walk samplers (fs, dfs, single, multiple),
// the uniform-vertex samplers (mhrw, rv), uniform edge sampling (re)
// and the random walk with uniform restarts (jump) — all emitting one
// weighted observation stream (core.Observation), which is what lets
// a single estimation pipeline serve every method.
//
// Estimation is live (internal/live): each job attaches a registered
// estimator plus a convergence monitor to its edge stream, publishing
// estimate reports — value, confidence interval, mixing diagnostics —
// while running. A Spec may carry a StopRule ("ci_halfwidth<=0.01",
// "ess>=5000", "rhat<=1.05"): the job then stops the moment its monitor
// certifies convergence, reporting a done state whose StopReason says
// why, instead of burning the rest of its budget.
//
// A manager samples either a single source (NewManager's src argument)
// or, with WithResolver, any of several named graphs: each Spec carries
// a Graph name, the Resolver maps it to a source, and the release
// callback it returns pins the graph for exactly as long as the job is
// running on a worker — which is how the netgraph catalog refuses to
// evict a graph mid-run.
//
// This is the regime the paper's cost model abstracts: crawling a
// rate-limited OSN API is slow, gets interrupted, and is multiplexed
// across many consumers. The state machine is
//
//	queued → running → done | failed | cancelled
//	            ↘ paused (checkpointed) → queued → running → ...
//
// Cancellation and pausing are cooperative through the session context:
// the sampler unwinds at the next budget charge, freeing the worker
// without affecting other jobs. Determinism is end to end: a job's final
// edge-sequence hash, edge count and estimate are identical whether it
// ran straight through or was paused, checkpointed to disk, and resumed
// by a different manager in a different process (see the package tests).
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"frontier/internal/core"
	"frontier/internal/crawl"
	"frontier/internal/live"
	"frontier/internal/obs"
	"frontier/internal/xrand"
)

// State is a job's position in the lifecycle state machine.
type State string

// Job states. Done, Failed and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// DefaultCheckpointEvery is the number of emitted edges between
// checkpoints when the spec does not say otherwise.
const DefaultCheckpointEvery = 256

// Spec describes one sampling job. The zero hit-ratio/cost fields mean
// the paper's unit cost model.
type Spec struct {
	// Graph names the hosted graph the job samples. Empty means the
	// manager's default graph, which is also what specs written before
	// multi-graph hosting deserialize to — old checkpoints resume
	// unchanged.
	Graph string `json:"graph,omitempty"`
	// Method selects the sampler by method-registry name. The built-in
	// set is the paper's full comparison roster: "fs", "dfs", "single",
	// "multiple" (the degree-proportional walk samplers), "mhrw" and
	// "rv" (uniform-vertex samplers), "re" (uniform edges; needs a
	// graph with edge-level queries) and "jump" (random walk with
	// uniform restarts, tuned by JumpProb). Custom methods appear here
	// once registered (WithMethods).
	Method string `json:"method"`
	// M is the walker count (fs, dfs, multiple); default 1.
	M int `json:"m,omitempty"`
	// JumpProb is the uniform-restart probability α ∈ [0,1) for method
	// "jump" (see core.JumpRW: the restart probability at vertex v is
	// w/(w+deg(v)) with w = α/(1−α)). Rejected on any other method.
	JumpProb float64 `json:"jump_prob,omitempty"`
	// Budget is the sampling budget B (continuous time for dfs).
	Budget float64 `json:"budget"`
	// Seed is the deterministic RNG seed; two jobs with equal specs
	// produce identical samples.
	Seed uint64 `json:"seed"`
	// Estimate selects what the job estimates from its edge stream by
	// live-estimator registry name: "avgdegree" (default), "clustering",
	// "assortativity", "degreedist" or "groupdensity" (some need source
	// facets — edge-level queries, group labels — and are rejected at
	// submission when the graph lacks them). Custom estimators appear
	// here once registered.
	Estimate string `json:"estimate,omitempty"`
	// StopRule is an optional adaptive-stopping condition (see
	// live.ParseStopRule), e.g. "ci_halfwidth<=0.01", "ess>=5000" or
	// "rhat<=1.05": the job halts as soon as its live convergence
	// monitor satisfies the rule instead of burning the full budget.
	// Empty means budget-only, the historical behavior.
	StopRule string `json:"stop_rule,omitempty"`
	// CheckpointEvery is the number of emitted edges between checkpoints
	// (0 = DefaultCheckpointEvery).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

func (sp *Spec) normalize() {
	if sp.M < 1 {
		sp.M = 1
	}
	if sp.Estimate == "" {
		sp.Estimate = "avgdegree"
	}
	if sp.CheckpointEvery <= 0 {
		sp.CheckpointEvery = DefaultCheckpointEvery
	}
}

// validate checks sp against a resolved source, the method registry
// and the estimator registry. Unknown methods and estimates fail with
// the registries' full name lists, so the error teaches the caller
// what the service can run and estimate; method/estimator mismatches
// (a vertex sampler driving an edge-level estimand) are caught here
// too, before the job ever queues.
func (sp Spec) validate(src crawl.Source, reg *live.Registry, methods *MethodRegistry) error {
	m, err := methods.resolve(sp.Method)
	if err != nil {
		return err
	}
	if err := m.validateSpec(sp, src); err != nil {
		return err
	}
	est, err := reg.New(sp.Estimate, src)
	if err != nil {
		return fmt.Errorf("jobs: estimate: %w", err)
	}
	if est.NeedsEdges() && !m.EmitsEdges {
		return fmt.Errorf("jobs: estimate %q needs edge observations, which method %q does not emit", sp.Estimate, sp.Method)
	}
	if _, err := live.ParseStopRule(sp.StopRule); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if sp.Budget <= 0 {
		return errors.New("jobs: budget must be positive")
	}
	return nil
}

// newRuntime builds the live estimation runtime a spec asks for:
// estimator from the registry, a convergence monitor with one chain per
// walker (capped — Gelman-Rubin needs a few long chains, not many
// stubs), and the parsed stop rule. Construction is a pure function of
// the spec, which is what makes a resumed job's runtime identical to
// the interrupted one's.
func newRuntime(reg *live.Registry, sp Spec, src crawl.Source) (*live.Runtime, error) {
	est, err := reg.New(sp.Estimate, src)
	if err != nil {
		return nil, err
	}
	rule, err := live.ParseStopRule(sp.StopRule)
	if err != nil {
		return nil, err
	}
	chains := sp.M
	if chains < 2 {
		chains = 2
	}
	if chains > 8 {
		chains = 8
	}
	return live.NewRuntime(est, live.NewMonitor(live.MonitorConfig{Chains: chains}), rule), nil
}

// newSampler builds the resumable sampler a spec asks for through the
// method registry; validate already guaranteed the method exists.
func (m *Manager) newSampler(sp Spec) (core.ObservationSampler, error) {
	method, err := m.methods.resolve(sp.Method)
	if err != nil {
		return nil, err
	}
	return method.Build(sp), nil
}

// Status is the externally visible snapshot of a job, served verbatim
// by the graphd job endpoints.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`
	// Edges is the number of observations sampled so far (partial while
	// running, final when done). The field predates the weighted
	// observation stream: for edge-emitting methods it counts edges,
	// for vertex-emitting ones (mhrw, rv) sampled vertices.
	Edges int64 `json:"edges"`
	// Spent is the budget consumed so far.
	Spent float64 `json:"spent"`
	// Estimate is the current (partial or final) estimate; omitted until
	// the job has observed enough to form one.
	Estimate *float64 `json:"estimate,omitempty"`
	// EdgeHash is the FNV-1a hash of the emitted observation sequence
	// (vertex observations hash as their (v,v) self-pair) — equal runs
	// have equal hashes, which is how the determinism tests compare
	// interrupted and uninterrupted runs without shipping every
	// observation.
	EdgeHash string `json:"edge_hash"`
	// StopReason explains why a done job stopped: "budget" when it ran
	// its full budget, or the stop rule's convergence reason (e.g.
	// "converged: ci_halfwidth<=0.01 (...)"). Empty for non-done states.
	StopReason string `json:"stop_reason,omitempty"`
	// EstimateUpdates counts live estimation report refreshes — the
	// per-job counter /metrics exports as
	// graphd_job_estimate_updates_total.
	EstimateUpdates int64 `json:"estimate_updates,omitempty"`
	// Retries counts transparent retry attempts the job's source issued
	// against its backing API (non-zero only for crawls over a
	// resilience-wrapped netgraph client); RetrySpent is their cost in
	// budget units. They are charged to a ledger separate from Spent,
	// so a fault storm never changes which observations a job samples.
	// /metrics exports Retries as graphd_job_retries_total.
	Retries int64 `json:"retries,omitempty"`
	// RetrySpent is the budget-unit cost of Retries (see Retries).
	RetrySpent float64 `json:"retry_spent,omitempty"`
	// Breaker is the source's circuit-breaker state at the last step
	// boundary ("closed", "open", "half-open"; empty when the source
	// has no breaker). /metrics exports it as a graphd_job_breaker
	// gauge.
	Breaker string `json:"breaker,omitempty"`
	// TraceID is the job's trace identifier: the X-Trace-Id of the
	// submitting request when it carried one, minted otherwise. Every
	// log line and span event the job produces carries it, and
	// GET /v1/jobs/{id}/trace serves the job's span timeline under it.
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error,omitempty"`
}

// checkpoint is the on-disk (and in-memory) serialized form of a job.
// For queued jobs only ID/Spec/State are set; once the runner has
// reached a step boundary the full runtime state is present.
type checkpoint struct {
	ID      string                   `json:"id"`
	Spec    Spec                     `json:"spec"`
	State   State                    `json:"state"`
	Session *crawl.SessionCheckpoint `json:"session,omitempty"`
	Sampler json.RawMessage          `json:"sampler,omitempty"`
	// Live is the serialized live.Runtime: estimator sufficient
	// statistics plus the convergence monitor's bounded rings, so a
	// resumed job's estimate, CI and diagnostics continue losslessly.
	Live            json.RawMessage `json:"live,omitempty"`
	Edges           int64           `json:"edges"`
	EdgeHash        uint64          `json:"edge_hash"`
	Spent           float64         `json:"spent"`
	Estimate        *float64        `json:"estimate,omitempty"`
	StopReason      string          `json:"stop_reason,omitempty"`
	EstimateUpdates int64           `json:"estimate_updates,omitempty"`
	// Retries/RetrySpent mirror the session's retry ledger at the
	// checkpoint boundary (the full ledger also rides inside Session;
	// these copies serve status without deserializing it). Breaker is
	// the source's circuit-breaker state name at capture.
	Retries    int64   `json:"retries,omitempty"`
	RetrySpent float64 `json:"retry_spent,omitempty"`
	Breaker    string  `json:"breaker,omitempty"`
	// TraceID persists the job's trace identifier so a resumed job keeps
	// its identity across restarts (the span timeline itself is
	// in-memory only and restarts fresh with a "restored" event).
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Job is one sampling job tracked by a Manager.
type Job struct {
	id       string
	spec     Spec
	traceID  string        // immutable after Submit/load
	timeline *obs.Timeline // bounded span ring; nil only for zero-value Jobs

	// persistMu serializes checkpoint-file writes for this job. It is
	// held across the state snapshot AND the write+rename, so concurrent
	// persists (worker checkpoint vs. an HTTP cancel) cannot interleave
	// on the shared tmp file, and the last write always reflects the
	// latest state — without it a cancel's stale "running" record could
	// land after the worker's terminal one and resurrect the job on
	// restart.
	persistMu sync.Mutex

	mu         sync.Mutex
	state      State
	err        error
	cancel     context.CancelCauseFunc // non-nil while running
	edges      int64
	spent      float64
	estimate   float64 // NaN until meaningful
	hash       uint64
	stopReason string       // why a done job stopped ("budget" or a convergence reason)
	report     *live.Report // latest live estimation report, nil before the first
	estUpdates int64        // report refreshes, the /metrics counter
	retries    int64        // source retry attempts at the last checkpoint
	retrySpent float64      // their cost in budget units
	breaker    string       // breaker state at the last checkpoint ("" = none)
	cp         *checkpoint  // last step-boundary checkpoint, nil before the first

	version  int64 // bumped on every state change and checkpoint
	nextSub  int
	watchers map[int]chan struct{} // coalescing wake channels, one per Watch
}

// notifyLocked bumps the job's version and wakes every watcher. The
// wake channels have capacity 1 and the send never blocks: a watcher
// that has not yet consumed the previous wake-up coalesces this one into
// it, then reads the latest status — progress is level-triggered, so no
// update is lost, only intermediate ones are skipped. Callers must hold
// j.mu.
func (j *Job) notifyLocked() {
	j.version++
	for _, ch := range j.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Watch registers for change notifications: the returned channel
// receives (coalesced) wake-ups whenever the job's state or progress
// changes; read the fresh snapshot with StatusVersion after each one.
// stop unregisters the watcher and must be called exactly once.
func (j *Job) Watch() (wake <-chan struct{}, stop func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.watchers == nil {
		j.watchers = make(map[int]chan struct{})
	}
	id := j.nextSub
	j.nextSub++
	j.watchers[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.watchers, id)
		j.mu.Unlock()
	}
}

// StatusVersion returns the job's status snapshot together with a
// monotonically increasing version, letting a Watch loop skip writes
// when nothing changed between wake-ups.
func (j *Job) StatusVersion() (Status, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), j.version
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked builds the snapshot; callers must hold j.mu.
func (j *Job) statusLocked() Status {
	st := Status{
		ID:       j.id,
		State:    j.state,
		Spec:     j.spec,
		Edges:    j.edges,
		Spent:    j.spent,
		EdgeHash: fmt.Sprintf("%016x", j.hash),
	}
	if !math.IsNaN(j.estimate) {
		e := j.estimate
		st.Estimate = &e
	}
	if j.state == StateDone {
		st.StopReason = j.stopReason
	}
	st.EstimateUpdates = j.estUpdates
	st.Retries = j.retries
	st.RetrySpent = j.retrySpent
	st.Breaker = j.breaker
	st.TraceID = j.traceID
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// recordEvent appends a span event to the job's timeline (nil-safe, so
// zero-value Jobs in tests cannot crash the recorder).
func (j *Job) recordEvent(name, detail string) {
	if j.timeline != nil {
		j.timeline.Record(name, detail)
	}
}

// Trace is the span-timeline payload served at GET /v1/jobs/{id}/trace:
// the job's lifecycle events (queued→running→checkpoint→terminal) plus
// any crawl-level resilience events ("crawl/retry", "crawl/hedge",
// "crawl/breaker") its source emitted while the job ran.
type Trace struct {
	// JobID is the job's identifier.
	JobID string `json:"job_id"`
	// TraceID is the job's trace identifier (see Status.TraceID).
	TraceID string `json:"trace_id,omitempty"`
	// Events is the timeline, oldest first. The ring is bounded
	// (obs.DefaultTimelineCap); when it overflowed, the oldest events
	// were dropped and Dropped counts them.
	Events []obs.Event `json:"events"`
	// Dropped counts events lost to ring overflow.
	Dropped int64 `json:"dropped,omitempty"`
}

// Trace returns the job's span timeline snapshot.
func (j *Job) Trace() Trace {
	tr := Trace{JobID: j.id, TraceID: j.traceID}
	if j.timeline != nil {
		tr.Events = j.timeline.Events()
		tr.Dropped = j.timeline.Dropped()
	} else {
		tr.Events = []obs.Event{}
	}
	return tr
}

// setReport installs a fresh live estimation report, bumping the
// estimate-update counter and waking watchers (the SSE stream sends an
// "estimate" frame per refresh it observes).
func (j *Job) setReport(rep *live.Report) {
	j.mu.Lock()
	j.report = rep
	j.estUpdates++
	j.notifyLocked()
	j.mu.Unlock()
}

// EstimateReport returns the job's latest live estimation report, its
// refresh sequence number (monotone; the estimate-update counter), and
// whether a report exists yet.
func (j *Job) EstimateReport() (live.Report, int64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.report == nil {
		return live.Report{}, j.estUpdates, false
	}
	return *j.report, j.estUpdates, true
}

// errPaused is the cancellation cause distinguishing a pause (resume
// later from the last checkpoint) from a cancel (terminal).
var errPaused = errors.New("jobs: paused")

// errConverged is the cancellation cause for adaptive stopping: the
// job's stop rule is satisfied, so the sampler is unwound early and the
// job finishes done — with the convergence reason, not "budget".
var errConverged = errors.New("jobs: estimate converged")

// StopReasonBudget is the Status.StopReason of a done job that ran its
// full budget (no stop rule, or a rule that never fired).
const StopReasonBudget = "budget"

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrStopped is returned by Submit after the manager has been stopped.
var ErrStopped = errors.New("jobs: manager stopped")

// ErrUnknownJob is returned for operations on ids the manager does not
// track.
var ErrUnknownJob = errors.New("jobs: unknown job")

// Resolver maps a Spec's Graph name to the source the job samples.
// Implementations are the bridge between the manager's worker pool and a
// catalog of hosted graphs (netgraph.Catalog implements Resolver).
type Resolver interface {
	// Resolve returns the source serving name ("" means the default
	// graph) together with a release callback. The source stays pinned —
	// protected from eviction — until release is called; the manager
	// calls it when the job leaves a worker (done, failed, cancelled or
	// paused). release is never nil on success and is safe to call once.
	Resolve(name string) (src crawl.Source, release func(), err error)
}

// staticResolver serves a single fixed source under the default name,
// preserving the one-graph NewManager contract.
type staticResolver struct{ src crawl.Source }

func (r staticResolver) Resolve(name string) (crawl.Source, func(), error) {
	if name != "" {
		return nil, nil, fmt.Errorf("jobs: unknown graph %q (manager hosts a single unnamed graph)", name)
	}
	return r.src, func() {}, nil
}

// Option configures a Manager.
type Option func(*Manager)

// WithResolver routes each job's Graph name through r instead of the
// single source passed to NewManager (which may then be nil). Use it to
// run one worker pool over a catalog of named graphs.
func WithResolver(r Resolver) Option {
	return func(m *Manager) { m.resolver = r }
}

// WithWorkers sets the worker pool size (default 4, minimum 1).
func WithWorkers(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.workers = n
		}
	}
}

// WithQueueCapacity bounds how many submitted-but-not-running jobs the
// manager holds before Submit returns ErrQueueFull (default 1024).
func WithQueueCapacity(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.queueCap = n
		}
	}
}

// WithCheckpointDir persists every job's checkpoints under dir (one
// JSON file per job, written atomically). A new Manager over the same
// dir reloads them: terminal jobs stay queryable, interrupted ones are
// requeued and resume from their last step boundary.
func WithCheckpointDir(dir string) Option {
	return func(m *Manager) { m.dir = dir }
}

// WithEstimators validates and builds every job's Estimate through reg
// instead of the process-wide live.Default() registry. Use it to host
// custom estimators on one manager without registering them globally.
func WithEstimators(reg *live.Registry) Option {
	return func(m *Manager) {
		if reg != nil {
			m.registry = reg
		}
	}
}

// WithMethods validates and builds every job's Method through reg
// instead of the process-wide DefaultMethods() registry. Use it to
// host custom sampling methods on one manager without registering
// them globally.
func WithMethods(reg *MethodRegistry) Option {
	return func(m *Manager) {
		if reg != nil {
			m.methods = reg
		}
	}
}

// WithLogger routes the manager's structured logs — job lifecycle
// events at info, per-slab progress at debug, checkpoint-persistence
// failures at error — through l. Without it the manager is silent
// except for persistence failures, which fall back to the standard log
// package so they are never lost.
func WithLogger(l *slog.Logger) Option {
	return func(m *Manager) {
		if l != nil {
			m.log = l
			m.logSet = true
		}
	}
}

// Manager owns the job table, the bounded queue and the worker pool.
// All methods are safe for concurrent use.
type Manager struct {
	resolver  Resolver
	registry  *live.Registry
	methods   *MethodRegistry
	workers   int
	queueCap  int
	dir       string
	log       *slog.Logger
	logSet    bool              // WithLogger was used (persistErr fallback)
	durations *obs.HistogramVec // per-method job wall time, /metrics histogram

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int
	closed bool

	busy           atomic.Int64 // workers currently running a job
	lastCheckpoint atomic.Int64 // unix nanos of the newest checkpoint, 0 = none

	queue          chan string
	stopCh         chan struct{}
	wg             sync.WaitGroup
	persistErrOnce sync.Once
}

// NewManager creates a manager sampling from src and starts its worker
// pool. When src also implements estimate.EdgeView (both *graph.Graph
// and the netgraph client do), edge-level estimates are available. With
// WithResolver, src is ignored (pass nil) and every job's Graph name is
// resolved through the resolver instead. With WithCheckpointDir,
// previously persisted jobs are loaded and non-terminal ones requeued
// before the workers start.
func NewManager(src crawl.Source, opts ...Option) (*Manager, error) {
	m := &Manager{
		registry:  live.Default(),
		methods:   DefaultMethods(),
		workers:   4,
		queueCap:  1024,
		jobs:      make(map[string]*Job),
		log:       obs.NopLogger(),
		durations: obs.NewHistogramVec("method", nil),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.resolver == nil {
		if src == nil {
			return nil, errors.New("jobs: NewManager needs a source or WithResolver")
		}
		m.resolver = staticResolver{src: src}
	}
	m.queue = make(chan string, m.queueCap)
	m.stopCh = make(chan struct{})
	if m.dir != "" {
		if err := m.loadCheckpoints(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < m.workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Workers returns the worker pool size.
func (m *Manager) Workers() int { return m.workers }

// BusyWorkers returns how many workers are currently running a job —
// the worker-pool occupancy exposed at /metrics.
func (m *Manager) BusyWorkers() int { return int(m.busy.Load()) }

// QueueDepth returns the number of submitted jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// LastCheckpoint returns the time of the newest step-boundary checkpoint
// taken by any job (zero if none has been taken yet). Operators alert on
// its age: a stalling checkpoint clock under running jobs means progress
// has stopped.
func (m *Manager) LastCheckpoint() time.Time {
	ns := m.lastCheckpoint.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// ActiveJobs returns the number of jobs currently queued, running or
// paused (i.e. not in a terminal state).
func (m *Manager) ActiveJobs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Submit validates sp — including that its Graph name resolves and
// supports the requested estimate — assigns an id and enqueues the job
// under a freshly minted trace ID.
func (m *Manager) Submit(sp Spec) (*Job, error) {
	return m.SubmitTrace(sp, "")
}

// SubmitTrace is Submit with an explicit trace ID — the graphd job
// endpoint passes the submitting request's X-Trace-Id so the job's
// logs and span timeline share the caller's trace. An empty traceID
// mints a fresh one.
func (m *Manager) SubmitTrace(sp Spec, traceID string) (*Job, error) {
	sp.normalize()
	src, release, err := m.resolver.Resolve(sp.Graph)
	if err != nil {
		return nil, err
	}
	release() // validation only; the job pins the graph when it runs
	if err := sp.validate(src, m.registry, m.methods); err != nil {
		return nil, err
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrStopped
	}
	m.nextID++
	j := &Job{
		id: fmt.Sprintf("job-%06d", m.nextID), spec: sp, state: StateQueued,
		estimate: math.NaN(), traceID: traceID, timeline: obs.NewTimeline(0),
	}
	select {
	case m.queue <- j.id:
	default:
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	j.recordEvent("queued", "")
	m.log.LogAttrs(context.Background(), slog.LevelInfo, "job queued",
		slog.String("job_id", j.id), slog.String("trace_id", traceID),
		slog.String("method", sp.Method), slog.String("graph", sp.Graph),
		slog.Float64("budget", sp.Budget))
	m.persist(j)
	return j, nil
}

// JobDurations returns the per-method job wall-time histogram vector
// the server renders at /metrics as graphd_job_duration_seconds.
func (m *Manager) JobDurations() *obs.HistogramVec { return m.durations }

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns all tracked jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// Cancel moves a job to the cancelled state. Queued and paused jobs
// cancel immediately; a running job's session context is cancelled and
// the worker frees up at the sampler's next budget charge. Cancelling a
// terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued, StatePaused:
		j.state = StateCancelled
		j.notifyLocked()
	case StateRunning:
		j.cancel(context.Canceled)
	}
	j.mu.Unlock()
	m.persist(j)
	return nil
}

// Pause checkpoints a running job and returns it to the paused state;
// the last step-boundary checkpoint (written every CheckpointEvery
// edges) is what a later resume continues from. Pausing a queued job
// parks it; pausing a terminal job is an error.
func (m *Manager) Pause(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateRunning:
		j.cancel(errPaused)
		return nil
	case StateQueued:
		j.state = StatePaused
		j.notifyLocked()
		return nil
	case StatePaused:
		return nil
	default:
		return fmt.Errorf("jobs: cannot pause %s job %s", j.state, id)
	}
}

// Resume requeues a paused job.
func (m *Manager) Resume(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.mu.Lock()
	if j.state != StatePaused {
		j.mu.Unlock()
		return fmt.Errorf("jobs: cannot resume %s job %s", j.state, id)
	}
	j.state = StateQueued
	j.notifyLocked()
	j.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStopped
	}
	select {
	case m.queue <- id:
		return nil
	default:
		j.mu.Lock()
		j.state = StatePaused
		j.mu.Unlock()
		return ErrQueueFull
	}
}

// Stop pauses every running job (checkpointing it at its next step
// boundary), waits for the workers to drain, and rejects further
// submissions. Queued jobs stay queued on disk; a new manager over the
// same checkpoint directory picks everything up again.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			j.cancel(errPaused)
		}
		j.mu.Unlock()
	}
	close(m.stopCh)
	m.wg.Wait()
}

func (m *Manager) stopped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stopCh:
			return
		case id := <-m.queue:
			if m.stopped() {
				// Leave the job queued (it is persisted as such); a new
				// manager over the checkpoint dir picks it up.
				return
			}
			j, ok := m.Get(id)
			if !ok {
				continue
			}
			j.mu.Lock()
			if j.state != StateQueued {
				// Cancelled or paused while waiting in the queue.
				j.mu.Unlock()
				continue
			}
			ctx, cancel := context.WithCancelCause(context.Background())
			j.state = StateRunning
			j.cancel = cancel
			method := j.spec.Method
			j.notifyLocked()
			j.mu.Unlock()
			j.recordEvent("running", "")
			m.log.LogAttrs(ctx, slog.LevelInfo, "job running",
				slog.String("job_id", j.id), slog.String("trace_id", j.traceID),
				slog.String("method", method))
			m.busy.Add(1)
			start := time.Now()
			m.runJob(ctx, j)
			m.durations.Observe(method, time.Since(start).Seconds())
			m.busy.Add(-1)
			cancel(nil)
		}
	}
}

// runJob drives one job from its spec or last checkpoint to the next
// terminal or paused state. The job's graph stays pinned — the resolver
// refuses to evict it — for exactly the duration of this call.
func (m *Manager) runJob(ctx context.Context, j *Job) {
	j.mu.Lock()
	cp := j.cp
	spec := j.spec
	j.mu.Unlock()

	src, release, err := m.resolver.Resolve(spec.Graph)
	if err != nil {
		m.finish(j, StateFailed, fmt.Errorf("jobs: resolving graph %q: %w", spec.Graph, err))
		return
	}
	defer release()

	// Route the source's transport-level resilience events (retry,
	// hedge, breaker transitions) into this job's span timeline for the
	// duration of the run. With several workers sharing one source the
	// last installer wins — events attribute to the most recent job.
	if es, ok := src.(crawl.EventSource); ok {
		es.SetEventSink(func(kind, detail string) { j.recordEvent("crawl/"+kind, detail) })
		defer es.SetEventSink(nil)
	}

	rt, err := newRuntime(m.registry, spec, src)
	if err != nil {
		m.finish(j, StateFailed, fmt.Errorf("jobs: building estimator: %w", err))
		return
	}
	sampler, err := m.newSampler(spec)
	if err != nil {
		m.finish(j, StateFailed, err)
		return
	}
	method, err := m.methods.resolve(spec.Method)
	if err != nil {
		m.finish(j, StateFailed, err)
		return
	}
	var sess *crawl.Session
	var edges int64
	var hash uint64 = fnvOffset
	resume := cp != nil && cp.Session != nil
	if resume {
		var err error
		sess, err = crawl.ResumeSession(ctx, src, *cp.Session)
		if err == nil {
			err = sampler.Restore(cp.Sampler)
		}
		if err == nil {
			err = rt.Restore(cp.Live)
		}
		if err != nil {
			m.finish(j, StateFailed, fmt.Errorf("jobs: restoring checkpoint: %w", err))
			return
		}
		edges, hash = cp.Edges, cp.EdgeHash
	} else {
		model := crawl.UnitCosts()
		sess = crawl.NewSessionContext(ctx, src, spec.Budget, model, xrand.New(spec.Seed))
	}

	// All built-in job samplers report which walker moved; the assertion
	// is defensive against custom non-tracking methods (chain 0 then
	// takes every observation, degrading R-hat but nothing else).
	tracker, _ := sampler.(core.WalkerTracker)
	stopIssued := false
	emit := func(o core.Observation) {
		hash = hashEdge(hash, o.U, o.V)
		edges++
		walker := 0
		if tracker != nil {
			walker = tracker.LastWalker()
		}
		if rep := rt.ObserveSample(walker, o); rep != nil {
			j.setReport(rep)
			if rep.Converged && !stopIssued {
				// Adaptive stop: unwind the sampler at its next budget
				// charge. The cancellation cause marks this "done", not
				// "cancelled".
				stopIssued = true
				j.recordEvent("converged", rep.StopReason)
				j.mu.Lock()
				if j.cancel != nil {
					j.cancel(errConverged)
				}
				j.mu.Unlock()
			}
		}
		if edges%int64(spec.CheckpointEvery) == 0 {
			m.checkpointNow(j, sess, sampler, rt, edges, hash)
		}
	}

	// Methods without per-walker attribution (single, mhrw, rv, re,
	// jump: LastWalker ≡ 0, so chain 0 takes every observation either
	// way) are driven through the allocation-free batched surface. The
	// batched run emits the byte-identical observation stream, so edge
	// hash, runtime state and resumability are unchanged; only the
	// granularity moves — checkpoints land at the slab boundary that
	// crosses a CheckpointEvery multiple, and a convergence stop unwinds
	// at the next slab instead of the next observation (≤ core.SlabSize
	// extra observations, all still hashed and consumed). Walker-tracked
	// methods (fs, dfs, multiple) keep the per-observation drive: the
	// R-hat chains need LastWalker per observation.
	// Per-slab progress logging is guarded by a level check hoisted out
	// of the hot loop: when debug is disabled (the normal case) the
	// batched path stays allocation-free — BenchmarkObsBatchLogging
	// gates exactly this property.
	logSlabs := m.log.Enabled(ctx, slog.LevelDebug)
	emitBatch := func(batch []core.Observation) {
		for _, o := range batch {
			hash = hashEdge(hash, o.U, o.V)
		}
		prev := edges
		edges += int64(len(batch))
		if logSlabs {
			m.log.LogAttrs(ctx, slog.LevelDebug, "slab",
				slog.String("job_id", j.id), slog.Int("n", len(batch)),
				slog.Int64("edges", edges))
		}
		if rep := rt.ObserveBatch(0, batch); rep != nil {
			j.setReport(rep)
			if rep.Converged && !stopIssued {
				stopIssued = true
				j.recordEvent("converged", rep.StopReason)
				j.mu.Lock()
				if j.cancel != nil {
					j.cancel(errConverged)
				}
				j.mu.Unlock()
			}
		}
		if edges/int64(spec.CheckpointEvery) != prev/int64(spec.CheckpointEvery) {
			m.checkpointNow(j, sess, sampler, rt, edges, hash)
		}
	}
	drive := func() error {
		if !method.UsesWalkers {
			if resume {
				return sampler.ResumeObsBatch(sess, emitBatch)
			}
			return sampler.RunObsBatch(sess, emitBatch)
		}
		if resume {
			return sampler.ResumeObs(sess, emit)
		}
		return sampler.RunObs(sess, emit)
	}

	if runSafe, ok := src.(interface{ RunSafely(func() error) error }); ok {
		// Network sources surface fetch failures through panics; convert
		// them to job failures instead of killing the worker.
		err = runSafe.RunSafely(drive)
	} else {
		err = drive()
	}

	// finishDone records the final live report and state for the two
	// successful endings (budget exhausted, estimate converged).
	finishDone := func(reason string) {
		j.mu.Lock()
		j.stopReason = reason
		j.mu.Unlock()
		final := rt.Report()
		j.setReport(&final)
		m.checkpointNow(j, sess, sampler, rt, edges, hash)
		m.finish(j, StateDone, nil)
	}

	switch {
	case err == nil:
		// Budget exhausted: the job is done. Record the final state.
		finishDone(StopReasonBudget)
	case errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), errConverged):
		// The stop rule fired: done early, with the convergence reason.
		_, reason := rt.Converged()
		finishDone(reason)
	case errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), errPaused):
		// Paused: keep the last step-boundary checkpoint for resume. The
		// edges emitted since then will be re-run identically.
		m.finish(j, StatePaused, nil)
	case errors.Is(err, context.Canceled):
		m.finish(j, StateCancelled, nil)
	default:
		m.finish(j, StateFailed, err)
	}
}

// checkpointNow records the job's full runtime state at a step boundary
// (called from inside emit, where sampler, session and live runtime are
// consistent) and persists it when a checkpoint directory is
// configured.
func (m *Manager) checkpointNow(j *Job, sess *crawl.Session, sampler core.ObservationSampler, rt *live.Runtime, edges int64, hash uint64) {
	snap, err := sampler.Snapshot()
	if err != nil {
		return // not started; nothing worth recording yet
	}
	liveState, err := rt.State()
	if err != nil {
		return
	}
	scp := sess.Checkpoint()
	est := rt.Estimator().Value()
	cp := &checkpoint{
		ID:       j.id,
		Spec:     j.spec,
		Session:  &scp,
		Sampler:  snap,
		Live:     liveState,
		Edges:    edges,
		EdgeHash: hash,
		Spent:    scp.Stats.Spent,
		// Checkpoint() synced the source's retry ledger into Stats and
		// captured any resilience (breaker/limiter) state into scp, so
		// the numbers here agree with the serialized session.
		Retries:    scp.Stats.Retries,
		RetrySpent: scp.Stats.RetrySpent,
		Breaker:    sess.BreakerState(),
	}
	if !math.IsNaN(est) {
		e := est
		cp.Estimate = &e
	}
	j.mu.Lock()
	cp.State = j.state
	cp.StopReason = j.stopReason
	cp.EstimateUpdates = j.estUpdates
	cp.TraceID = j.traceID
	j.cp = cp
	j.edges = edges
	j.spent = scp.Stats.Spent
	j.retries = cp.Retries
	j.retrySpent = cp.RetrySpent
	j.breaker = cp.Breaker
	j.estimate = est
	j.hash = hash
	j.notifyLocked()
	j.mu.Unlock()
	j.recordEvent("checkpoint", fmt.Sprintf("edges=%d spent=%g retries=%d", edges, scp.Stats.Spent, cp.Retries))
	m.lastCheckpoint.Store(time.Now().UnixNano())
	m.persist(j)
}

// finish moves a job to its post-run state.
func (m *Manager) finish(j *Job, state State, err error) {
	j.mu.Lock()
	// A cancel that raced the final step wins over "done": the caller
	// asked for the job to stop and was told so.
	if !(state == StateDone && j.state == StateCancelled) {
		j.state = state
	}
	j.err = err
	j.cancel = nil
	final := j.state
	detail := j.stopReason
	edges := j.edges
	j.notifyLocked()
	j.mu.Unlock()
	if err != nil {
		detail = err.Error()
	}
	j.recordEvent(string(final), detail)
	level := slog.LevelInfo
	if final == StateFailed {
		level = slog.LevelError
	}
	m.log.LogAttrs(context.Background(), level, "job finished",
		slog.String("job_id", j.id), slog.String("trace_id", j.traceID),
		slog.String("state", string(final)), slog.Int64("edges", edges),
		slog.String("detail", detail))
	m.persist(j)
}

// persist writes the job's current checkpoint file atomically. A no-op
// without a checkpoint directory. Write failures are logged once per
// manager — checkpointing is best-effort durability, but losing it
// silently would let an operator believe jobs are resumable when they
// are not.
func (m *Manager) persist(j *Job) {
	if m.dir == "" {
		return
	}
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	j.mu.Lock()
	// The live counters (j.edges, j.hash, j.spent) are only advanced at
	// checkpoint boundaries, so they always agree with the serialized
	// session/sampler state below; for terminal jobs they are the final
	// numbers.
	cp := checkpoint{
		ID: j.id, Spec: j.spec, State: j.state,
		Edges: j.edges, EdgeHash: j.hash, Spent: j.spent,
		StopReason: j.stopReason, EstimateUpdates: j.estUpdates,
		Retries: j.retries, RetrySpent: j.retrySpent, Breaker: j.breaker,
	}
	if j.cp != nil {
		cp.Session = j.cp.Session
		cp.Sampler = j.cp.Sampler
		cp.Live = j.cp.Live
		// The persisted estimate-update counter must agree with the
		// persisted live state, exactly like edges/hash/spent: reports
		// published after the last step boundary will be re-published
		// identically on resume, and persisting the live counter would
		// double-count them across a pause/restart.
		cp.EstimateUpdates = j.cp.EstimateUpdates
	}
	if !math.IsNaN(j.estimate) {
		e := j.estimate
		cp.Estimate = &e
	}
	if j.err != nil {
		cp.Error = j.err.Error()
	}
	j.mu.Unlock()

	data, err := json.Marshal(cp)
	if err != nil {
		m.persistErr(cp.ID, err)
		return
	}
	path := filepath.Join(m.dir, cp.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		m.persistErr(cp.ID, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		m.persistErr(cp.ID, err)
	}
}

// persistErr reports the first checkpoint-write failure (subsequent
// ones are almost always the same full-disk/permissions condition).
func (m *Manager) persistErr(id string, err error) {
	m.persistErrOnce.Do(func() {
		m.log.LogAttrs(context.Background(), slog.LevelError,
			"persisting checkpoint failed (further failures suppressed)",
			slog.String("job_id", id), slog.String("dir", m.dir),
			slog.String("error", err.Error()))
		if !m.logSet {
			// No structured logger configured: fall back to the standard
			// log package so the failure is never silently swallowed.
			log.Printf("jobs: persisting %s to %s failed (further failures suppressed): %v", id, m.dir, err)
		}
	})
}

// loadCheckpoints restores the job table from the checkpoint directory,
// requeuing every non-terminal job. Called before the workers start, so
// no locking subtleties.
func (m *Manager) loadCheckpoints() error {
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return fmt.Errorf("jobs: checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return fmt.Errorf("jobs: checkpoint dir: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.dir, ent.Name()))
		if err != nil {
			return fmt.Errorf("jobs: reading checkpoint %s: %w", ent.Name(), err)
		}
		var cp checkpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			return fmt.Errorf("jobs: decoding checkpoint %s: %w", ent.Name(), err)
		}
		cp.Spec.normalize()
		// A checkpoint whose graph no longer resolves (e.g. a hot-loaded
		// graph evicted before the restart) or whose spec fails validation
		// marks its job failed instead of aborting the reload: one stale
		// checkpoint must not take down the whole manager.
		var invalid error
		var report *live.Report
		if src, release, rerr := m.resolver.Resolve(cp.Spec.Graph); rerr != nil {
			invalid = rerr
		} else {
			invalid = cp.Spec.validate(src, m.registry, m.methods)
			if invalid == nil && cp.State == StateDone && len(cp.Live) > 0 {
				// A done checkpoint carries the final live-runtime state, so
				// the report the job published as it finished is exactly
				// reconstructible (newRuntime is a pure function of the
				// spec). Rehydrate it: otherwise the restored job answers
				// EstimateReport with "no report yet", the estimates
				// endpoint 404s, and a sweep reattaching to the job after a
				// restart would aggregate its figure from a result missing
				// the estimand vector. A state that fails to restore (e.g.
				// cross-version live state) leaves the report absent —
				// consumers that need it fail loudly downstream.
				if rt, err := newRuntime(m.registry, cp.Spec, src); err == nil {
					if err := rt.Restore(cp.Live); err == nil {
						rep := rt.Report()
						report = &rep
					}
				}
			}
			release()
		}
		j := &Job{
			id: cp.ID, spec: cp.Spec, edges: cp.Edges, spent: cp.Spent,
			hash: cp.EdgeHash, estimate: math.NaN(),
			stopReason: cp.StopReason, estUpdates: cp.EstimateUpdates,
			retries: cp.Retries, retrySpent: cp.RetrySpent, breaker: cp.Breaker,
			traceID: cp.TraceID, timeline: obs.NewTimeline(0),
		}
		if j.traceID == "" {
			// Checkpoints written before trace support: mint now so every
			// job always has a trace identity.
			j.traceID = obs.NewTraceID()
		}
		j.recordEvent("restored", "from checkpoint "+ent.Name())
		// estUpdates already carries the checkpointed counter; installing
		// the rehydrated report must not bump it, so this bypasses
		// setReport deliberately (the job is not yet visible to watchers).
		j.report = report
		if cp.Estimate != nil {
			j.estimate = *cp.Estimate
		}
		if cp.Error != "" {
			j.err = errors.New(cp.Error)
		}
		if cp.Session != nil {
			c := cp
			j.cp = &c
		}
		switch {
		case invalid != nil && !cp.State.Terminal():
			j.state = StateFailed
			j.err = fmt.Errorf("jobs: checkpoint %s: %w", ent.Name(), invalid)
		case cp.State.Terminal():
			j.state = cp.State
		default:
			// Interrupted mid-flight (queued, running at crash time, or
			// paused): requeue from the last step boundary.
			j.state = StateQueued
		}
		m.jobs[cp.ID] = j
		if n := idNumber(cp.ID); n > m.nextID {
			m.nextID = n
		}
		if j.state == StateQueued {
			select {
			case m.queue <- j.id:
			default:
				return ErrQueueFull
			}
		}
	}
	return nil
}

// idNumber extracts the numeric suffix of a "job-%06d" id (0 if the id
// was produced elsewhere).
func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// FNV-1a over the edge sequence: order-sensitive, deterministic, and
// cheap enough to run per edge.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashEdge(h uint64, u, v int) uint64 {
	for _, x := range [2]uint64{uint64(u), uint64(v)} {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}
