package benchfmt

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: frontier
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMethodObservations/fs-8         	   20000	       244.3 ns/op
BenchmarkMethodObservations/fs-8         	   20000	       250.1 ns/op
BenchmarkMethodObservations/fs-8         	   20000	       241.0 ns/op
BenchmarkMethodObservations/rv-8         	   20000	        24.94 ns/op
BenchmarkMethodObservations/rv-8         	   20000	        26.02 ns/op
BenchmarkAblationAdjacency/csr-8         	   20000	       150.0 ns/op
some unrelated line
PASS
ok  	frontier	12.269s
`

func parseSample(t *testing.T) *Set {
	t.Helper()
	set, err := Parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestParseCollectsSamplesAndStripsCPUSuffix(t *testing.T) {
	set := parseSample(t)
	if len(set.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(set.Benchmarks), set.Benchmarks)
	}
	fs := set.Benchmarks["BenchmarkMethodObservations/fs"]
	if len(fs.NsPerOp) != 3 {
		t.Fatalf("fs samples = %v, want 3", fs.NsPerOp)
	}
	if med := fs.Median(); med != 244.3 {
		t.Fatalf("fs median = %v, want 244.3", med)
	}
	rv := set.Benchmarks["BenchmarkMethodObservations/rv"]
	if med := rv.Median(); med != (24.94+26.02)/2 {
		t.Fatalf("rv even-count median = %v", med)
	}
}

func TestJSONRoundTripAndText(t *testing.T) {
	set := parseSample(t)
	data, err := set.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(set.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(got.Benchmarks), len(set.Benchmarks))
	}
	text := got.GoBenchText()
	if !strings.Contains(text, "BenchmarkMethodObservations/fs 1 244.3 ns/op") {
		t.Fatalf("GoBenchText missing sample line:\n%s", text)
	}
	// Re-parsing the emitted text reproduces the sample lists.
	again, err := Parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if again.Benchmarks["BenchmarkMethodObservations/fs"].Median() != 244.3 {
		t.Fatal("text emission does not round-trip")
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	base := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{100, 100, 100}},
		"BenchmarkA/y": {NsPerOp: []float64{100, 100, 100}},
		"BenchmarkA/z": {NsPerOp: []float64{100, 100, 100}},
		"BenchmarkB":   {NsPerOp: []float64{100}},
	}}
	cur := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{115, 110, 112}}, // +12%: fine
		"BenchmarkA/y": {NsPerOp: []float64{125, 130, 121}}, // +25%: regressed
		// BenchmarkA/z missing: must fail the gate
		"BenchmarkB": {NsPerOp: []float64{900}}, // outside the gate regexp
	}}
	rep, err := Compare(base, cur, "^BenchmarkA/", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compared) != 2 {
		t.Fatalf("compared %d, want 2", len(rep.Compared))
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "BenchmarkA/y" {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkA/z" {
		t.Fatalf("missing = %+v", rep.Missing)
	}
	table := rep.Table()
	if !strings.Contains(table, "REGRESSED") || !strings.Contains(table, "MISSING") {
		t.Fatalf("table does not flag failures:\n%s", table)
	}

	// An improvement never trips the gate.
	fast := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{50}},
		"BenchmarkA/y": {NsPerOp: []float64{50}},
		"BenchmarkA/z": {NsPerOp: []float64{50}},
	}}
	rep, err = Compare(base, fast, "^BenchmarkA/", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 || len(rep.Missing) != 0 {
		t.Fatalf("improvement flagged: %+v", rep)
	}

	if _, err := Compare(base, cur, "([", 0.2); err == nil {
		t.Fatal("bad gate regexp must error")
	}
}
