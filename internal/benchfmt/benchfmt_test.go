package benchfmt

import (
	"bufio"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: frontier
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMethodObservations/fs-8         	   20000	       244.3 ns/op
BenchmarkMethodObservations/fs-8         	   20000	       250.1 ns/op
BenchmarkMethodObservations/fs-8         	   20000	       241.0 ns/op
BenchmarkMethodObservations/rv-8         	   20000	        24.94 ns/op
BenchmarkMethodObservations/rv-8         	   20000	        26.02 ns/op
BenchmarkAblationAdjacency/csr-8         	   20000	       150.0 ns/op
some unrelated line
PASS
ok  	frontier	12.269s
`

func parseSample(t *testing.T) *Set {
	t.Helper()
	set, err := Parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestParseCollectsSamplesAndStripsCPUSuffix(t *testing.T) {
	set := parseSample(t)
	if len(set.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(set.Benchmarks), set.Benchmarks)
	}
	fs := set.Benchmarks["BenchmarkMethodObservations/fs"]
	if len(fs.NsPerOp) != 3 {
		t.Fatalf("fs samples = %v, want 3", fs.NsPerOp)
	}
	if med := fs.Median(); med != 244.3 {
		t.Fatalf("fs median = %v, want 244.3", med)
	}
	rv := set.Benchmarks["BenchmarkMethodObservations/rv"]
	if med := rv.Median(); med != (24.94+26.02)/2 {
		t.Fatalf("rv even-count median = %v", med)
	}
}

func TestJSONRoundTripAndText(t *testing.T) {
	set := parseSample(t)
	data, err := set.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(set.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(got.Benchmarks), len(set.Benchmarks))
	}
	text := got.GoBenchText()
	if !strings.Contains(text, "BenchmarkMethodObservations/fs 1 244.3 ns/op") {
		t.Fatalf("GoBenchText missing sample line:\n%s", text)
	}
	// Re-parsing the emitted text reproduces the sample lists.
	again, err := Parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if again.Benchmarks["BenchmarkMethodObservations/fs"].Median() != 244.3 {
		t.Fatal("text emission does not round-trip")
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	base := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{100, 100, 100}},
		"BenchmarkA/y": {NsPerOp: []float64{100, 100, 100}},
		"BenchmarkA/z": {NsPerOp: []float64{100, 100, 100}},
		"BenchmarkB":   {NsPerOp: []float64{100}},
	}}
	cur := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{115, 110, 112}}, // +12%: fine
		"BenchmarkA/y": {NsPerOp: []float64{125, 130, 121}}, // +25%: regressed
		// BenchmarkA/z missing: must fail the gate
		"BenchmarkB": {NsPerOp: []float64{900}}, // outside the gate regexp
	}}
	rep, err := Compare(base, cur, "^BenchmarkA/", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compared) != 2 {
		t.Fatalf("compared %d, want 2", len(rep.Compared))
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "BenchmarkA/y" {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkA/z" {
		t.Fatalf("missing = %+v", rep.Missing)
	}
	table := rep.Table()
	if !strings.Contains(table, "REGRESSED") || !strings.Contains(table, "MISSING") {
		t.Fatalf("table does not flag failures:\n%s", table)
	}

	// An improvement never trips the gate.
	fast := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{50}},
		"BenchmarkA/y": {NsPerOp: []float64{50}},
		"BenchmarkA/z": {NsPerOp: []float64{50}},
	}}
	rep, err = Compare(base, fast, "^BenchmarkA/", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 || len(rep.Missing) != 0 {
		t.Fatalf("improvement flagged: %+v", rep)
	}

	if _, err := Compare(base, cur, "([", 0.2); err == nil {
		t.Fatal("bad gate regexp must error")
	}
}

const benchmemOutput = `goos: linux
BenchmarkMethodObservations/fs-8    	   20000	       120.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkMethodObservations/fs-8    	   20000	       118.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkMethodObservations/fs-8    	   20000	       125.0 ns/op	       8 B/op	       1 allocs/op
BenchmarkPipeline-8                 	   20000	       310.0 ns/op	      16 B/op	       2 allocs/op
PASS
`

func TestParseBenchmemCollectsAllocMetrics(t *testing.T) {
	set, err := Parse(bufio.NewScanner(strings.NewReader(benchmemOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if set.FormatVersion != 2 {
		t.Fatalf("format version = %d, want 2", set.FormatVersion)
	}
	fs := set.Benchmarks["BenchmarkMethodObservations/fs"]
	if len(fs.NsPerOp) != 3 || len(fs.BytesPerOp) != 3 || len(fs.AllocsPerOp) != 3 {
		t.Fatalf("fs samples = %+v, want 3 of each metric", fs)
	}
	if med := medianOf(fs.AllocsPerOp); med != 0 {
		t.Fatalf("fs allocs median = %v, want 0", med)
	}
	if med := medianOf(fs.BytesPerOp); med != 0 {
		t.Fatalf("fs bytes median = %v, want 0", med)
	}
	pipe := set.Benchmarks["BenchmarkPipeline"]
	if medianOf(pipe.AllocsPerOp) != 2 || medianOf(pipe.BytesPerOp) != 16 {
		t.Fatalf("pipeline alloc metrics = %+v", pipe)
	}
	// The emitted text round-trips the allocation columns.
	again, err := Parse(bufio.NewScanner(strings.NewReader(set.GoBenchText())))
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Benchmarks["BenchmarkPipeline"]; medianOf(got.AllocsPerOp) != 2 {
		t.Fatalf("GoBenchText lost alloc samples: %+v", got)
	}
}

func TestCompareGatesAllocRegressions(t *testing.T) {
	base := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{100}, BytesPerOp: []float64{0}, AllocsPerOp: []float64{0}},
		"BenchmarkA/y": {NsPerOp: []float64{100}, BytesPerOp: []float64{64}, AllocsPerOp: []float64{2}},
	}}
	cur := &Set{Benchmarks: map[string]Result{
		// Time fine; a zero-alloc path started allocating → +Inf delta.
		"BenchmarkA/x": {NsPerOp: []float64{105}, BytesPerOp: []float64{32}, AllocsPerOp: []float64{1}},
		// Time fine; B/op within 20%; allocs/op +50% → regressed.
		"BenchmarkA/y": {NsPerOp: []float64{95}, BytesPerOp: []float64{70}, AllocsPerOp: []float64{3}},
	}}
	rep, err := Compare(base, cur, "^BenchmarkA/", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compared) != 6 {
		t.Fatalf("compared %d metric pairs, want 6", len(rep.Compared))
	}
	var got []string
	for _, c := range rep.Regressions {
		got = append(got, c.Name+" "+c.Metric)
	}
	want := []string{"BenchmarkA/x B/op", "BenchmarkA/x allocs/op", "BenchmarkA/y allocs/op"}
	if len(got) != len(want) {
		t.Fatalf("regressions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("regressions = %v, want %v", got, want)
		}
	}
	for _, c := range rep.Regressions {
		if c.Name == "BenchmarkA/x" && !math.IsInf(c.Delta, 1) {
			t.Fatalf("zero-baseline regression delta = %v, want +Inf", c.Delta)
		}
	}
}

func TestCompareAcceptsV1Baseline(t *testing.T) {
	// A committed v1 baseline (ns/op only, format_version 1) must load
	// and gate time without demanding allocation samples.
	v1 := []byte(`{"format_version":1,"benchmarks":{"BenchmarkA/x":{"ns_per_op":[100,101,99]}}}`)
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cur := &Set{Benchmarks: map[string]Result{
		"BenchmarkA/x": {NsPerOp: []float64{140}, BytesPerOp: []float64{512}, AllocsPerOp: []float64{9}},
	}}
	rep, err := Compare(base, cur, ".", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compared) != 1 || rep.Compared[0].Metric != MetricNs {
		t.Fatalf("v1 baseline should gate ns/op only, compared %+v", rep.Compared)
	}
	if len(rep.Regressions) != 1 {
		t.Fatalf("+40%% ns/op should regress: %+v", rep.Regressions)
	}
}
