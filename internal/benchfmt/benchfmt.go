// Package benchfmt parses `go test -bench` text output into a stable
// JSON form and compares two such result sets for the CI
// benchmark-regression gate (cmd/benchgate). It understands the
// standard bench line shape
//
//	BenchmarkName/sub-8   20000   244.3 ns/op   12 B/op   0 allocs/op
//
// collecting every ns/op — and, when the run used -benchmem, B/op and
// allocs/op — sample per benchmark name (the -cpu suffix is stripped,
// so -count=N runs yield N samples) and gating each metric on the
// median — the robust center CI schedulers' noise cannot easily shift.
//
// Format history: version 1 stored ns/op samples only; version 2 adds
// the optional allocation metrics. LoadFile accepts both (a v1
// baseline simply gates nothing on allocations), so bumping the
// format never breaks an existing committed baseline.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds every sample collected for one benchmark.
type Result struct {
	// NsPerOp is the time-per-operation sample list in run order.
	NsPerOp []float64 `json:"ns_per_op"`
	// BytesPerOp is the B/op sample list, present only when the bench
	// run used -benchmem (format version 2).
	BytesPerOp []float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is the allocs/op sample list, present only when the
	// bench run used -benchmem (format version 2).
	AllocsPerOp []float64 `json:"allocs_per_op,omitempty"`
}

// Median returns the median ns/op sample (0 with no samples).
func (r Result) Median() float64 { return medianOf(r.NsPerOp) }

// metricSamples returns the sample list for a gated metric name.
func (r Result) metricSamples(metric string) []float64 {
	switch metric {
	case MetricNs:
		return r.NsPerOp
	case MetricBytes:
		return r.BytesPerOp
	case MetricAllocs:
		return r.AllocsPerOp
	}
	return nil
}

// medianOf returns the median of a sample list (0 when empty).
func medianOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// The gated metrics, in report order. Allocation metrics appear only
// in sets parsed from -benchmem runs.
const (
	MetricNs     = "ns/op"
	MetricBytes  = "B/op"
	MetricAllocs = "allocs/op"
)

// Metrics lists every gated metric in report order.
var Metrics = []string{MetricNs, MetricBytes, MetricAllocs}

// Set is a parsed benchmark result set — what BENCH_baseline.json and
// the BENCH_5.json artifact hold.
type Set struct {
	// FormatVersion guards future shape changes.
	FormatVersion int `json:"format_version"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to samples.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output; the
// trailing allocation columns appear only under -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(?:\s+([0-9.e+]+) B/op\s+([0-9.e+]+) allocs/op)?`)

// Parse reads go-bench text and collects the per-benchmark samples.
func Parse(r *bufio.Scanner) (*Set, error) {
	set := &Set{FormatVersion: 2, Benchmarks: make(map[string]Result)}
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad ns/op %q for %s: %w", m[3], m[1], err)
		}
		res := set.Benchmarks[m[1]]
		res.NsPerOp = append(res.NsPerOp, ns)
		if m[4] != "" {
			bytes, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad B/op %q for %s: %w", m[4], m[1], err)
			}
			allocs, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad allocs/op %q for %s: %w", m[5], m[1], err)
			}
			res.BytesPerOp = append(res.BytesPerOp, bytes)
			res.AllocsPerOp = append(res.AllocsPerOp, allocs)
		}
		set.Benchmarks[m[1]] = res
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: reading bench output: %w", err)
	}
	return set, nil
}

// ParseFile parses a go-bench text file.
func ParseFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return Parse(sc)
}

// Marshal renders the set as deterministic, indented JSON.
func (s *Set) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return append(data, '\n'), nil
}

// LoadFile reads a JSON result set.
func LoadFile(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	set := &Set{}
	if err := json.Unmarshal(data, set); err != nil {
		return nil, fmt.Errorf("benchfmt: decoding %s: %w", path, err)
	}
	if set.Benchmarks == nil {
		return nil, fmt.Errorf("benchfmt: %s holds no benchmarks", path)
	}
	return set, nil
}

// GoBenchText renders the set back into go-bench text (one line per
// sample, names sorted) — the form benchstat consumes.
func (s *Set) GoBenchText() string {
	names := make([]string, 0, len(s.Benchmarks))
	for name := range s.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		res := s.Benchmarks[name]
		for i, ns := range res.NsPerOp {
			fmt.Fprintf(&b, "%s 1 %g ns/op", name, ns)
			if i < len(res.BytesPerOp) && i < len(res.AllocsPerOp) {
				fmt.Fprintf(&b, " %g B/op %g allocs/op", res.BytesPerOp[i], res.AllocsPerOp[i])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Comparison is one gated benchmark metric's baseline-vs-current
// medians.
type Comparison struct {
	// Name is the benchmark name.
	Name string
	// Metric is the gated unit: "ns/op", "B/op" or "allocs/op".
	Metric string
	// BaseMedian and CurMedian are the metric's medians in each set.
	BaseMedian, CurMedian float64
	// Delta is the relative change ((cur-base)/base; +0.25 = 25%
	// worse). A metric regressing from a zero baseline (e.g. an
	// allocation-free path starting to allocate) reports +Inf.
	Delta float64
	// Regressed marks comparisons beyond the allowed regression.
	Regressed bool
}

// Report is the outcome of comparing two sets under a gate.
type Report struct {
	// Compared lists every gated benchmark present in both sets,
	// sorted by name.
	Compared []Comparison
	// Regressions is the subset of Compared beyond the threshold.
	Regressions []Comparison
	// Missing lists gated baseline benchmarks absent from the current
	// set — a silently dropped benchmark must fail the gate, not pass
	// it.
	Missing []string
}

// Compare gates cur against base: every baseline benchmark matching
// the gate regexp must be present in cur with, for every metric both
// sets sampled, a median no more than maxRegress above the baseline
// median. ns/op is always gated; B/op and allocs/op join when both
// sets came from -benchmem runs (so a v1 baseline gates time only),
// and a metric whose zero baseline becomes nonzero always regresses.
func Compare(base, cur *Set, gate string, maxRegress float64) (*Report, error) {
	re, err := regexp.Compile(gate)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: bad gate regexp: %w", err)
	}
	rep := &Report{}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		curRes, ok := cur.Benchmarks[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		baseRes := base.Benchmarks[name]
		for _, metric := range Metrics {
			baseSamples := baseRes.metricSamples(metric)
			curSamples := curRes.metricSamples(metric)
			if len(baseSamples) == 0 || len(curSamples) == 0 {
				continue
			}
			baseMed, curMed := medianOf(baseSamples), medianOf(curSamples)
			c := Comparison{Name: name, Metric: metric, BaseMedian: baseMed, CurMedian: curMed}
			switch {
			case baseMed > 0:
				c.Delta = (curMed - baseMed) / baseMed
			case curMed > 0:
				c.Delta = math.Inf(1)
			}
			c.Regressed = c.Delta > maxRegress
			rep.Compared = append(rep.Compared, c)
			if c.Regressed {
				rep.Regressions = append(rep.Regressions, c)
			}
		}
	}
	return rep, nil
}

// Table renders the comparison as an aligned text table for the CI
// log.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-55s %10s %14s %14s %8s\n", "benchmark", "metric", "base", "cur", "delta")
	for _, c := range r.Compared {
		mark := ""
		if c.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-55s %10s %14.1f %14.1f %+7.1f%%%s\n", c.Name, c.Metric, c.BaseMedian, c.CurMedian, c.Delta*100, mark)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(&b, "%-55s %10s %14s %14s %8s\n", name, "", "-", "MISSING", "")
	}
	return b.String()
}
