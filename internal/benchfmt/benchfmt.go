// Package benchfmt parses `go test -bench` text output into a stable
// JSON form and compares two such result sets for the CI
// benchmark-regression gate (cmd/benchgate). It understands the
// standard bench line shape
//
//	BenchmarkName/sub-8   20000   244.3 ns/op   12 B/op   0 allocs/op
//
// collecting every ns/op sample per benchmark name (the -cpu suffix is
// stripped, so -count=N runs yield N samples) and gating on the median
// — the robust center CI schedulers' noise cannot easily shift.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds every ns/op sample collected for one benchmark.
type Result struct {
	// NsPerOp is the time-per-operation sample list in run order.
	NsPerOp []float64 `json:"ns_per_op"`
}

// Median returns the median ns/op sample (0 with no samples).
func (r Result) Median() float64 {
	if len(r.NsPerOp) == 0 {
		return 0
	}
	s := append([]float64(nil), r.NsPerOp...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Set is a parsed benchmark result set — what BENCH_baseline.json and
// the BENCH_5.json artifact hold.
type Set struct {
	// FormatVersion guards future shape changes.
	FormatVersion int `json:"format_version"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to samples.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op`)

// Parse reads go-bench text and collects the per-benchmark samples.
func Parse(r *bufio.Scanner) (*Set, error) {
	set := &Set{FormatVersion: 1, Benchmarks: make(map[string]Result)}
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad ns/op %q for %s: %w", m[3], m[1], err)
		}
		res := set.Benchmarks[m[1]]
		res.NsPerOp = append(res.NsPerOp, ns)
		set.Benchmarks[m[1]] = res
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: reading bench output: %w", err)
	}
	return set, nil
}

// ParseFile parses a go-bench text file.
func ParseFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return Parse(sc)
}

// Marshal renders the set as deterministic, indented JSON.
func (s *Set) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return append(data, '\n'), nil
}

// LoadFile reads a JSON result set.
func LoadFile(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	set := &Set{}
	if err := json.Unmarshal(data, set); err != nil {
		return nil, fmt.Errorf("benchfmt: decoding %s: %w", path, err)
	}
	if set.Benchmarks == nil {
		return nil, fmt.Errorf("benchfmt: %s holds no benchmarks", path)
	}
	return set, nil
}

// GoBenchText renders the set back into go-bench text (one line per
// sample, names sorted) — the form benchstat consumes.
func (s *Set) GoBenchText() string {
	names := make([]string, 0, len(s.Benchmarks))
	for name := range s.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		for _, ns := range s.Benchmarks[name].NsPerOp {
			fmt.Fprintf(&b, "%s 1 %g ns/op\n", name, ns)
		}
	}
	return b.String()
}

// Comparison is one gated benchmark's baseline-vs-current medians.
type Comparison struct {
	// Name is the benchmark name.
	Name string
	// BaseMedian and CurMedian are the median ns/op of each set.
	BaseMedian, CurMedian float64
	// Delta is the relative change ((cur-base)/base; +0.25 = 25% slower).
	Delta float64
	// Regressed marks comparisons beyond the allowed regression.
	Regressed bool
}

// Report is the outcome of comparing two sets under a gate.
type Report struct {
	// Compared lists every gated benchmark present in both sets,
	// sorted by name.
	Compared []Comparison
	// Regressions is the subset of Compared beyond the threshold.
	Regressions []Comparison
	// Missing lists gated baseline benchmarks absent from the current
	// set — a silently dropped benchmark must fail the gate, not pass
	// it.
	Missing []string
}

// Compare gates cur against base: every baseline benchmark matching
// the gate regexp must be present in cur with a median ns/op no more
// than maxRegress above the baseline median.
func Compare(base, cur *Set, gate string, maxRegress float64) (*Report, error) {
	re, err := regexp.Compile(gate)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: bad gate regexp: %w", err)
	}
	rep := &Report{}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		curRes, ok := cur.Benchmarks[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		baseMed, curMed := base.Benchmarks[name].Median(), curRes.Median()
		c := Comparison{Name: name, BaseMedian: baseMed, CurMedian: curMed}
		if baseMed > 0 {
			c.Delta = (curMed - baseMed) / baseMed
		}
		c.Regressed = c.Delta > maxRegress
		rep.Compared = append(rep.Compared, c)
		if c.Regressed {
			rep.Regressions = append(rep.Regressions, c)
		}
	}
	return rep, nil
}

// Table renders the comparison as an aligned text table for the CI
// log.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-55s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, c := range r.Compared {
		mark := ""
		if c.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-55s %14.1f %14.1f %+7.1f%%%s\n", c.Name, c.BaseMedian, c.CurMedian, c.Delta*100, mark)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(&b, "%-55s %14s %14s %8s\n", name, "-", "MISSING", "")
	}
	return b.String()
}
