// Command fsample runs a sampling method against a graph — local file
// or remote graphd URL — and prints the requested estimates.
//
// Usage:
//
//	fsample -graph g.fgrb -method fs -m 100 -budget 5000 -estimate degree
//	fsample -url http://localhost:8080 -method fs -m 64 -budget 2000 -estimate clustering
//	fsample -graph g.fg -method single -budget 1000 -estimate assortativity
//	fsample -graph g.fg -method fs -m 64 -budget 1e6 -estimate avgdegree -stop-ci 0.01 -json
//	fsample -url http://localhost:8080 -graph web -remote-job -follow \
//	    -method fs -m 64 -budget 100000 -estimate avgdegree -stop-ci 0.05
//
// Methods: fs, dfs, single, multiple, mhrw, rv, re, jump (a single
// random walk restarting at a uniform vertex, tuned by -jump-prob).
// Estimates: degree (CCDF of the in/out/sym distribution), clustering,
// assortativity, avgdegree. Every method feeds one weighted-observation
// estimation pipeline, so the uniform-vertex methods (mhrw, rv) and the
// jump walk estimate the same quantities as the edge samplers —
// clustering and assortativity excepted, which need edge observations
// that mhrw and rv do not emit.
//
// With -url, -graph names a hosted graph on a multi-graph graphd (empty
// selects the server's default graph); without -url it is a local file
// path.
//
// Remote crawls are batched: -cache-cap bounds the client's vertex LRU,
// -batch sets the prefetch batch size, and -prefetch controls how often
// FS prefetches its frontier's neighborhoods (default m/2 when remote).
//
// Adaptive stopping: -stop-ci ε attaches the live estimation subsystem
// (internal/live) to the run and halts it as soon as the estimate's
// ~95% confidence half-width is at most ε — locally by cancelling the
// session, remotely by submitting the job with a
// "ci_halfwidth<=ε" stop rule. The result then reports a "converged:"
// stop reason instead of "budget". For the degree estimate, -stop-ci
// and -json need -kind sym.
//
// -json prints the final result — estimate, confidence interval, steps
// used, stop reason, cache hit ratio — as a single machine-readable
// JSON object on stdout (human-readable progress still goes to the
// usual streams).
//
// -remote-job submits the run to the graphd job service instead of
// crawling client-side: the server samples the selected hosted graph in
// a worker pool and fsample waits for the job — with -follow streaming
// the live estimate frames over SSE (one line per report: value, CI,
// ESS, R-hat), otherwise waiting silently (SSE when available, else
// polling every -poll). Only -method, -m, -budget, -seed, -estimate,
// -stop-ci and -graph apply in this mode (the client-crawl flags
// -cache-cap/-batch/-prefetch/-kind/-diagnose are meaningless
// server-side, and -hit-ratio is rejected rather than ignored).
// -timeout bounds the whole run (local or remote) through a context; on
// expiry, in-flight HTTP requests abort and local sampling unwinds at
// the next budget charge.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"frontier/internal/core"
	"frontier/internal/crawl"
	"frontier/internal/estimate"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/jobs"
	"frontier/internal/live"
	"frontier/internal/netgraph"
	"frontier/internal/obs"
	"frontier/internal/stats"
	"frontier/internal/walkstats"
	"frontier/internal/xrand"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "local graph file, or hosted graph name with -url (empty = server default)")
		url       = flag.String("url", "", "remote graphd base URL")
		methodStr = flag.String("method", "fs", "fs | dfs | single | multiple | mhrw | rv | re | jump")
		m         = flag.Int("m", 100, "walkers (fs, dfs, multiple)")
		jumpProb  = flag.Float64("jump-prob", 0.1, "uniform-restart probability α for -method jump (0 <= α < 1)")
		budget    = flag.Float64("budget", 1000, "sampling budget B")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		est       = flag.String("estimate", "degree", "degree | clustering | assortativity | avgdegree")
		kindStr   = flag.String("kind", "sym", "degree kind: in | out | sym")
		hitRatio  = flag.Float64("hit-ratio", 1, "random-vertex hit ratio h")
		diagnose  = flag.Bool("diagnose", false, "report convergence diagnostics (Geweke z, ESS) on the walk")
		stopCI    = flag.Float64("stop-ci", 0, "adaptive stop: halt once the estimate's ~95% CI half-width is <= this (0 = run to budget)")
		jsonOut   = flag.Bool("json", false, "print the final result as one machine-readable JSON object on stdout")
		cacheCap  = flag.Int("cache-cap", netgraph.DefaultCacheCapacity, "remote client vertex-cache capacity (LRU records; <= 0 unbounded)")
		batchSize = flag.Int("batch", netgraph.DefaultBatchSize, "remote client prefetch batch size")
		prefetch  = flag.Int("prefetch", -1, "FS frontier-prefetch interval in steps (0 off, -1 auto: m/2 when remote)")
		remoteJob = flag.Bool("remote-job", false, "submit the run to graphd's job service (-url) and wait for it instead of crawling client-side")
		follow    = flag.Bool("follow", false, "with -remote-job, stream live estimate frames over SSE and print each update")
		poll      = flag.Duration("poll", 0, "with -remote-job, polling interval when SSE is unavailable (0 = client default)")
		timeout   = flag.Duration("timeout", 0, "overall run timeout (0 = none); cancels in-flight requests and unwinds sampling")

		// Resilience middleware flags (remote crawls; see netgraph.WithResilience).
		// Setting any of them wraps the client's transport in the chain
		// Retry → CircuitBreak → RateLimit → Hedge → AttemptTimeout.
		retriesF       = flag.Int("retries", 0, "max attempts per request incl. the first (0 = no resilience chain; 1 = chain without retries)")
		retryBase      = flag.Duration("retry-base", 0, "base backoff before the first retry (0 = 50ms default)")
		retryMax       = flag.Duration("retry-max", 0, "backoff cap, Retry-After included (0 = 5s default)")
		rateLimit      = flag.Float64("rate-limit", 0, "max requests/sec per host (token bucket; 0 = unlimited)")
		rateBurst      = flag.Int("rate-burst", 0, "token-bucket burst size (<1 = 1)")
		breakerAfter   = flag.Int("breaker-after", 0, "trip the circuit breaker after this many consecutive failures (0 = no breaker)")
		breakerCool    = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before the half-open probe (0 = 1s default)")
		hedgeDelay     = flag.Duration("hedge", 0, "hedge idempotent requests still unresolved after this delay (0 = off)")
		attemptTimeout = flag.Duration("attempt-timeout", 0, "per-attempt deadline; a timed-out attempt is retried (0 = off)")

		// Observability flags. The default level is warn: a CLI's stdout
		// is its result, so informational logging is opt-in.
		logLevel  = flag.String("log-level", "warn", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		traceF    = flag.Bool("trace", false, "mint a trace ID for this run (propagated to graphd via X-Trace-Id); with -remote-job, print the job's span timeline at the end")
	)
	flag.Parse()

	level, lerr := obs.ParseLevel(*logLevel)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "fsample: %v\n", lerr)
		os.Exit(2)
	}
	logger, lerr := obs.NewLogger(os.Stderr, level, *logFormat)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "fsample: %v\n", lerr)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	// The chain is enabled by any resilience flag; its jitter stream
	// shares -seed so a faulted rerun replays the same backoff schedule.
	var resilience []netgraph.Option
	if *retriesF != 0 || *rateLimit > 0 || *breakerAfter > 0 || *hedgeDelay > 0 || *attemptTimeout > 0 {
		resilience = append(resilience, netgraph.WithResilience(netgraph.ResilienceConfig{
			MaxAttempts:      *retriesF,
			RetryBase:        *retryBase,
			RetryMax:         *retryMax,
			Seed:             *seed,
			RateLimit:        *rateLimit,
			RateBurst:        *rateBurst,
			BreakerThreshold: *breakerAfter,
			BreakerCooldown:  *breakerCool,
			HedgeDelay:       *hedgeDelay,
			AttemptTimeout:   *attemptTimeout,
		}))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *traceF {
		// The ID rides every request this run issues as X-Trace-Id, so
		// server-side log lines and job statuses correlate with this run.
		id := obs.NewTraceID()
		ctx = obs.WithTraceID(ctx, id)
		fmt.Fprintf(os.Stderr, "trace id: %s\n", id)
	}

	if *remoteJob {
		if *url == "" {
			fmt.Fprintln(os.Stderr, "fsample: -remote-job needs -url")
			os.Exit(2)
		}
		// The job service runs the paper's unit cost model server-side;
		// silently dropping a non-default -hit-ratio would make the
		// remote result incomparable to the local run it names.
		if *hitRatio != 1 {
			fmt.Fprintln(os.Stderr, "fsample: -hit-ratio is not supported by -remote-job (the job service runs unit costs)")
			os.Exit(2)
		}
		cfg := remoteJobConfig{
			url: *url, graph: *graphPath, method: *methodStr,
			m: *m, budget: *budget, seed: *seed, est: *est,
			stopCI: *stopCI, jsonOut: *jsonOut,
			follow: *follow, poll: *poll, trace: *traceF,
			dialOpts: resilience,
		}
		if *methodStr == "jump" {
			// Only the jump method carries the restart probability; the
			// server rejects a non-zero jump_prob on any other method, so
			// the flag's default must not leak into other specs.
			cfg.jumpProb = *jumpProb
		}
		runRemoteJob(ctx, cfg)
		return
	}

	var kind graph.DegreeKind
	switch *kindStr {
	case "in":
		kind = graph.InDeg
	case "out":
		kind = graph.OutDeg
	case "sym":
		kind = graph.SymDeg
	default:
		fmt.Fprintf(os.Stderr, "fsample: unknown degree kind %q\n", *kindStr)
		os.Exit(2)
	}

	// Resolve the graph source: estimators need the richer EdgeView; the
	// session only needs crawl.Source.
	var (
		src      crawl.Source
		view     estimate.EdgeView
		runSafe  func(func() error) error
		isRemote bool
	)
	switch {
	case *url != "":
		// With -url, -graph selects a hosted graph by name rather than a
		// local file.
		c, err := netgraph.Dial(*url, nil, append([]netgraph.Option{
			netgraph.WithCacheCapacity(*cacheCap),
			netgraph.WithBatchSize(*batchSize),
			netgraph.WithGraph(*graphPath),
			netgraph.WithContext(ctx)}, resilience...)...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		src, view = c, c
		runSafe = c.RunSafely
		isRemote = true
	case *graphPath != "":
		g, err := graphio.LoadFile(*graphPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		src, view = g, g
		runSafe = func(fn func() error) error { return fn() }
	default:
		fmt.Fprintln(os.Stderr, "fsample: need -graph or -url")
		os.Exit(2)
	}

	model := crawl.UnitCosts()
	model.VertexHitRatio = *hitRatio

	// -prefetch -1 resolves to m/2 on remote graphs (batch the frontier's
	// neighborhoods to hide round-trip latency) and off for local files,
	// where prefetch advice is a no-op that still costs enumeration. A
	// cache too small to hold the frontier working set makes prefetching
	// counterproductive (each round evicts what the last one fetched), so
	// auto mode also stays off there; -prefetch N forces it regardless.
	prefetchEvery := *prefetch
	if prefetchEvery < 0 {
		prefetchEvery = 0
		if isRemote && (*cacheCap <= 0 || *cacheCap >= 4**m) {
			prefetchEvery = *m / 2
		}
	}

	// Every method is an ObservationSampler (the live estimation path);
	// the edge/vertex sampler variables additionally select the classic
	// estimate-package paths below.
	var sampler core.EdgeSampler
	var vsampler core.VertexSampler
	var obsSampler core.ObservationSampler
	switch *methodStr {
	case "fs":
		fs := &core.FrontierSampler{M: *m, PrefetchEvery: prefetchEvery}
		sampler, obsSampler = fs, fs
	case "dfs":
		d := &core.DistributedFS{M: *m}
		sampler, obsSampler = d, d
	case "single":
		s := &core.SingleRW{}
		sampler, obsSampler = s, s
	case "multiple":
		mr := &core.MultipleRW{M: *m}
		sampler, obsSampler = mr, mr
	case "mhrw":
		mh := &core.MetropolisRW{}
		vsampler, obsSampler = mh, mh
	case "rv":
		rv := &core.RandomVertexSampler{}
		vsampler, obsSampler = rv, rv
	case "re":
		re := &core.RandomEdgeSampler{}
		sampler, obsSampler = re, re
	case "jump":
		if *jumpProb < 0 || *jumpProb >= 1 {
			fmt.Fprintf(os.Stderr, "fsample: -jump-prob must be in [0,1), got %g\n", *jumpProb)
			os.Exit(2)
		}
		obsSampler = &core.JumpRW{JumpProb: *jumpProb}
	default:
		fmt.Fprintf(os.Stderr, "fsample: unknown method %q\n", *methodStr)
		os.Exit(2)
	}

	// The live path (adaptive stopping, JSON results, and every run of
	// the weighted-observation-only jump method) routes the run through
	// internal/live so every estimate gains a confidence interval and a
	// stop verdict; the classic paths below are unchanged.
	if *stopCI > 0 || *jsonOut || *methodStr == "jump" {
		if *est == "degree" && kind != graph.SymDeg {
			if *methodStr == "jump" {
				// jump has no classic path to fall back to: its weighted
				// stream only exists on the live surface.
				fmt.Fprintln(os.Stderr, "fsample: the live degree estimator tracks sym degrees; method jump supports -kind sym only")
			} else {
				fmt.Fprintln(os.Stderr, "fsample: the live degree estimator tracks sym degrees; use -kind sym (or drop -stop-ci/-json)")
			}
			os.Exit(2)
		}
		runLocalLive(ctx, localLiveConfig{
			src: src, method: *methodStr, sampler: obsSampler, runSafe: runSafe,
			model: model, budget: *budget, seed: *seed,
			est: *est, stopCI: *stopCI, jsonOut: *jsonOut,
			isRemote: isRemote,
		})
		return
	}

	sess := crawl.NewSessionContext(ctx, src, *budget, model, xrand.New(*seed))

	ignoreExhaustion := func(err error) error {
		if errors.Is(err, crawl.ErrBudgetExhausted) {
			return nil
		}
		return err
	}

	switch *est {
	case "degree":
		if vsampler != nil {
			e := estimate.NewPlainDegreeDist(view, kind)
			if err := runSafe(func() error { return ignoreExhaustion(vsampler.RunVertices(sess, e.ObserveVertex)) }); err != nil {
				fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
				os.Exit(1)
			}
			printCCDF(e.CCDF())
		} else {
			e := estimate.NewDegreeDist(view, kind)
			if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
				fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
				os.Exit(1)
			}
			printCCDF(e.CCDF())
		}
	case "clustering":
		requireEdgeSampler(sampler, *methodStr)
		e := estimate.NewClustering(view)
		if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("global clustering estimate: %.5f\n", e.Estimate())
	case "assortativity":
		requireEdgeSampler(sampler, *methodStr)
		e := estimate.NewAssortativity(view, false)
		if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("assortativity estimate: %.5f\n", e.Estimate())
	case "avgdegree":
		requireEdgeSampler(sampler, *methodStr)
		e := estimate.NewAvgDegree(view)
		if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("average degree estimate: %.3f\n", e.Estimate())
	default:
		fmt.Fprintf(os.Stderr, "fsample: unknown estimate %q\n", *est)
		os.Exit(2)
	}

	sess.SyncRetries()
	st := sess.Stats()
	fmt.Printf("budget spent: %.0f (steps %d, vertex queries %d, misses %d)\n",
		st.Spent, st.Steps, st.VertexQueries, st.VertexMisses)
	if isRemote {
		printCacheLine(src.(*netgraph.Client))
		printResilienceLine(src.(*netgraph.Client), st)
	}

	if *diagnose && sampler != nil {
		// Re-run the same walk (same seed) collecting the 1/deg series
		// the estimators weight by, and report stationarity diagnostics.
		dsess := crawl.NewSessionContext(ctx, src, *budget, model, xrand.New(*seed))
		var series []float64
		err := runSafe(func() error {
			return ignoreExhaustion(sampler.Run(dsess, func(u, v int) {
				series = append(series, 1/float64(view.SymDegree(v)))
			}))
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsample: diagnostics: %v\n", err)
			os.Exit(1)
		}
		if z, err := walkstats.Geweke(series, 0.1, 0.5); err == nil {
			verdict := "consistent with stationarity"
			if z > 2 || z < -2 {
				verdict = "NOT stationary (|z| > 2) — consider a larger m or budget"
			}
			fmt.Printf("Geweke z: %.2f (%s)\n", z, verdict)
		} else {
			fmt.Printf("Geweke z: %v\n", err)
		}
		if ess, err := walkstats.EffectiveSampleSize(series); err == nil {
			fmt.Printf("effective sample size: %.0f of %d walk samples\n", ess, len(series))
		}
	}
}

// liveEstimateName maps fsample's -estimate vocabulary to the live
// registry's.
func liveEstimateName(est string) (string, error) {
	switch est {
	case "degree":
		return "degreedist", nil
	case "clustering", "assortativity", "avgdegree":
		return est, nil
	default:
		return "", fmt.Errorf("fsample: unknown estimate %q", est)
	}
}

// jsonResult is the -json output: one machine-readable object holding
// the final estimate, its confidence interval, the work done and why
// the run stopped.
type jsonResult struct {
	Method        string             `json:"method"`
	Estimate      string             `json:"estimate"`
	Value         *float64           `json:"value,omitempty"`
	CI            *live.Interval     `json:"ci,omitempty"`
	Vector        *live.VectorResult `json:"vector,omitempty"`
	Diagnostics   *live.Diagnostics  `json:"diagnostics,omitempty"`
	Edges         int64              `json:"edges"`
	BudgetSpent   float64            `json:"budget_spent"`
	Budget        float64            `json:"budget"`
	StopReason    string             `json:"stop_reason"`
	CacheHitRatio *float64           `json:"cache_hit_ratio,omitempty"`
	JobID         string             `json:"job_id,omitempty"`
	EdgeHash      string             `json:"edge_hash,omitempty"`
	// Retries/RetrySpent are the resilience chain's retry ledger
	// (quota spent surviving faults, separate from budget_spent);
	// Breaker is the circuit breaker's final state. Omitted without a
	// resilience chain.
	Retries    int64   `json:"retries,omitempty"`
	RetrySpent float64 `json:"retry_spent,omitempty"`
	Breaker    string  `json:"breaker,omitempty"`
}

// emitJSON prints the result object on stdout.
func emitJSON(res jsonResult) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "fsample: encoding result: %v\n", err)
		os.Exit(1)
	}
}

// cacheHitRatio returns the client's hit ratio (nil before any lookup).
func cacheHitRatio(c *netgraph.Client) *float64 {
	hits, misses := c.CacheStats()
	if hits+misses == 0 {
		return nil
	}
	r := float64(hits) / float64(hits+misses)
	return &r
}

// printResilienceLine reports what surviving faults cost: retry
// attempts (charged to the session's retry ledger, not the sampling
// budget), hedge legs, and the breaker's final state. Silent without a
// resilience chain or when nothing fired.
func printResilienceLine(c *netgraph.Client, st crawl.Stats) {
	if st.Retries == 0 && c.Hedges() == 0 && c.BreakerState() == "" {
		return
	}
	line := fmt.Sprintf("resilience: %d retries (%.0f budget units), %d hedges",
		st.Retries, st.RetrySpent, c.Hedges())
	if bs := c.BreakerState(); bs != "" {
		line += ", breaker " + bs
	}
	fmt.Println(line)
}

// printCacheLine reports the remote client's fetch/cache counters.
func printCacheLine(c *netgraph.Client) {
	ratio := 0.0
	if r := cacheHitRatio(c); r != nil {
		ratio = *r
	}
	fmt.Printf("remote fetches: %d records in %d round trips (cache %d/%d, hit ratio %.2f)\n",
		c.Fetches(), c.Roundtrips(), c.CacheLen(), c.CacheCapacity(), ratio)
}

// localLiveConfig carries the flags of a client-side live-estimation
// run.
type localLiveConfig struct {
	src      crawl.Source
	method   string // the -method flag value, used verbatim in -json output
	sampler  core.ObservationSampler
	runSafe  func(func() error) error
	model    crawl.CostModel
	budget   float64
	seed     uint64
	est      string
	stopCI   float64
	jsonOut  bool
	isRemote bool
}

// runLocalLive drives the sampler's weighted observation stream
// through a live estimation runtime: the estimate gains a confidence
// interval, and with a stop-ci bound the session is cancelled the
// moment the CI is tight enough. If the estimate needs edge
// observations the method does not emit (clustering over mhrw), the
// registry-built estimator never qualifies an observation and the run
// is rejected up front instead.
func runLocalLive(ctx context.Context, cfg localLiveConfig) {
	name, err := liveEstimateName(cfg.est)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	est, err := live.Default().New(name, cfg.src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		os.Exit(1)
	}
	// The method registry knows which streams carry edge observations;
	// methods fsample builds outside the registry vocabulary would skip
	// the check, but -method only accepts registered names.
	if method, ok := jobs.DefaultMethods().Get(cfg.method); ok && est.NeedsEdges() && !method.EmitsEdges {
		fmt.Fprintf(os.Stderr, "fsample: estimate %q needs edge observations, which method %q does not emit\n", name, cfg.method)
		os.Exit(2)
	}
	var rule *live.StopRule
	if cfg.stopCI > 0 {
		rule, err = live.ParseStopRule(fmt.Sprintf("ci_halfwidth<=%g", cfg.stopCI))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(2)
		}
	}
	rt := live.NewRuntime(est, live.NewMonitor(live.MonitorConfig{}), rule)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sess := crawl.NewSessionContext(runCtx, cfg.src, cfg.budget, cfg.model, xrand.New(cfg.seed))
	tracker, _ := cfg.sampler.(core.WalkerTracker)
	var observations int64
	err = cfg.runSafe(func() error {
		return cfg.sampler.RunObs(sess, func(o core.Observation) {
			observations++
			walker := 0
			if tracker != nil {
				walker = tracker.LastWalker()
			}
			if rep := rt.ObserveSample(walker, o); rep != nil && rep.Converged {
				cancel() // adaptive stop: unwind at the next budget charge
			}
		})
	})
	converged, reason := rt.Converged()
	switch {
	case err == nil || errors.Is(err, crawl.ErrBudgetExhausted):
	case errors.Is(err, context.Canceled) && converged:
		// Our own adaptive stop, not an external cancellation.
	default:
		fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		os.Exit(1)
	}
	stopReason := jobs.StopReasonBudget
	if converged {
		stopReason = reason
	}

	rep := rt.Report()
	sess.SyncRetries()
	st := sess.Stats()
	if cfg.jsonOut {
		// Method is the flag vocabulary ("fs"), not the sampler's display
		// name, so local and remote -json outputs of one spec compare
		// equal field by field.
		res := jsonResult{
			Method:      cfg.method,
			Estimate:    name,
			Value:       rep.Value,
			CI:          rep.CI,
			Vector:      rep.Vector,
			Diagnostics: &rep.Diagnostics,
			Edges:       observations,
			BudgetSpent: st.Spent,
			Budget:      cfg.budget,
			StopReason:  stopReason,
		}
		if cfg.isRemote {
			c := cfg.src.(*netgraph.Client)
			res.CacheHitRatio = cacheHitRatio(c)
			res.Retries = st.Retries
			res.RetrySpent = st.RetrySpent
			res.Breaker = c.BreakerState()
		}
		emitJSON(res)
		return
	}
	if rep.Vector != nil && rep.Vector.Kind == "degree_ccdf" {
		printCCDF(rep.Vector.Values)
	}
	if rep.Value != nil {
		line := fmt.Sprintf("%s estimate: %.5f", cfg.est, *rep.Value)
		if rep.CI != nil {
			line += fmt.Sprintf(" ± %.5f (95%% CI)", rep.CI.HalfWidth)
		}
		fmt.Println(line)
	}
	fmt.Printf("stop reason: %s\n", stopReason)
	fmt.Printf("budget spent: %.0f of %.0f (steps %d, vertex queries %d, misses %d)\n",
		st.Spent, cfg.budget, st.Steps, st.VertexQueries, st.VertexMisses)
	if cfg.isRemote {
		printCacheLine(cfg.src.(*netgraph.Client))
		printResilienceLine(cfg.src.(*netgraph.Client), st)
	}
}

// remoteJobConfig carries the flags that apply to a server-side job
// run.
type remoteJobConfig struct {
	url      string
	graph    string // hosted graph name ("" = server default)
	method   string
	m        int
	jumpProb float64 // restart probability (method "jump" only)
	budget   float64
	seed     uint64
	est      string
	stopCI   float64
	jsonOut  bool
	follow   bool
	poll     time.Duration
	trace    bool              // print the job's span timeline when it ends
	dialOpts []netgraph.Option // resilience options for the control-plane client
}

// runRemoteJob submits the run as a server-side sampling job, waits for
// it (streaming live estimate frames with -follow) and prints the final
// status.
func runRemoteJob(ctx context.Context, cfg remoteJobConfig) {
	c, err := netgraph.Dial(cfg.url, nil, append([]netgraph.Option{
		netgraph.WithContext(ctx),
		netgraph.WithGraph(cfg.graph),
		netgraph.WithPollInterval(cfg.poll)}, cfg.dialOpts...)...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		os.Exit(1)
	}
	estName, err := liveEstimateName(cfg.est)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := jobs.Spec{
		Graph: cfg.graph, Method: cfg.method, M: cfg.m, JumpProb: cfg.jumpProb,
		Budget: cfg.budget, Seed: cfg.seed, Estimate: estName,
	}
	if cfg.stopCI > 0 {
		spec.StopRule = fmt.Sprintf("ci_halfwidth<=%g", cfg.stopCI)
	}
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%s on %q, m=%d, budget %.0f, stop rule %q)\n",
		st.ID, cfg.method, st.Spec.Graph, cfg.m, cfg.budget, spec.StopRule)

	var final jobs.Status
	if cfg.follow {
		final, err = c.FollowEstimates(ctx, st.ID, func(rep live.Report) {
			line := fmt.Sprintf("%s: n=%d", rep.Estimator, rep.Observations)
			if rep.Value != nil {
				line += fmt.Sprintf("  estimate %.5f", *rep.Value)
			}
			if rep.CI != nil {
				line += fmt.Sprintf(" ± %.5f", rep.CI.HalfWidth)
			}
			if rep.Diagnostics.ESS != nil {
				line += fmt.Sprintf("  ess %.0f", *rep.Diagnostics.ESS)
			}
			if rep.Diagnostics.RHat != nil {
				line += fmt.Sprintf("  rhat %.3f", *rep.Diagnostics.RHat)
			}
			if rep.Converged {
				line += "  [converged]"
			}
			fmt.Fprintln(os.Stderr, line)
		})
		if err != nil && ctx.Err() == nil {
			// The stream broke without our context expiring (old server,
			// proxy): fall back to waiting quietly. PollJob, not WaitJob —
			// the SSE path just failed, don't try it a second time.
			fmt.Fprintf(os.Stderr, "fsample: event stream unavailable (%v); polling\n", err)
			final, err = c.PollJob(ctx, st.ID, cfg.poll)
		}
	} else {
		final, err = c.WaitJob(ctx, st.ID, cfg.poll)
	}
	if err != nil {
		// The run is bounded by -timeout: tell the server to stop too.
		if _, cerr := c.CancelJob(context.Background(), st.ID); cerr == nil {
			fmt.Fprintf(os.Stderr, "fsample: %v (job %s cancelled)\n", err, st.ID)
		} else {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		}
		os.Exit(1)
	}
	if cfg.trace {
		// Printed before the result (and before a failure exit): the span
		// timeline is most useful exactly when the job did not end well.
		printJobTrace(ctx, c, final.ID)
	}
	if final.State != jobs.StateDone {
		fmt.Fprintf(os.Stderr, "fsample: job %s ended %s: %s\n", final.ID, final.State, final.Error)
		os.Exit(1)
	}
	// The estimates endpoint has the CI and diagnostics the status
	// lacks; best-effort — old servers without it still print the
	// status-level result.
	var rep *live.Report
	if r, rerr := c.JobEstimates(ctx, final.ID); rerr == nil {
		rep = &r
	}
	if cfg.jsonOut {
		res := jsonResult{
			Method:      cfg.method,
			Estimate:    estName,
			Value:       final.Estimate,
			Edges:       final.Edges,
			BudgetSpent: final.Spent,
			Budget:      cfg.budget,
			StopReason:  final.StopReason,
			JobID:       final.ID,
			EdgeHash:    final.EdgeHash,
			Retries:     final.Retries,
			RetrySpent:  final.RetrySpent,
			Breaker:     final.Breaker,
		}
		if rep != nil {
			res.CI = rep.CI
			res.Vector = rep.Vector
			res.Diagnostics = &rep.Diagnostics
		}
		emitJSON(res)
		return
	}
	if final.Estimate != nil {
		line := fmt.Sprintf("%s estimate: %.5f", final.Spec.Estimate, *final.Estimate)
		if rep != nil && rep.CI != nil {
			line += fmt.Sprintf(" ± %.5f (95%% CI)", rep.CI.HalfWidth)
		}
		fmt.Println(line)
	}
	if final.StopReason != "" {
		fmt.Printf("stop reason: %s\n", final.StopReason)
	}
	fmt.Printf("budget spent: %.0f (%d edges sampled, edge hash %s)\n", final.Spent, final.Edges, final.EdgeHash)
	if final.Retries > 0 || final.Breaker != "" {
		line := fmt.Sprintf("resilience: %d retries (%.0f budget units)", final.Retries, final.RetrySpent)
		if final.Breaker != "" {
			line += ", breaker " + final.Breaker
		}
		fmt.Println(line)
	}
}

// printJobTrace fetches and prints the job's span timeline to stderr:
// one line per event (lifecycle transitions, checkpoints, and the
// crawl retry/hedge/breaker events the resilient source emitted).
func printJobTrace(ctx context.Context, c *netgraph.Client, id string) {
	tr, err := c.JobTrace(ctx, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsample: job trace unavailable: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "trace %s: %d events (%d dropped)\n", tr.TraceID, len(tr.Events), tr.Dropped)
	for _, ev := range tr.Events {
		line := fmt.Sprintf("  %s %s", ev.Time.Format("15:04:05.000"), ev.Name)
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func requireEdgeSampler(s core.EdgeSampler, name string) {
	if s == nil {
		fmt.Fprintf(os.Stderr, "fsample: method %q emits vertices; this estimate needs an edge sampler\n", name)
		os.Exit(2)
	}
}

func printCCDF(gamma []float64) {
	fmt.Println("degree\tCCDF")
	for _, i := range stats.LogBuckets(len(gamma), 4) {
		if gamma[i] <= 0 {
			continue
		}
		fmt.Printf("%d\t%.6g\n", i, gamma[i])
	}
}
