// Command fsample runs a sampling method against a graph — local file
// or remote graphd URL — and prints the requested estimates.
//
// Usage:
//
//	fsample -graph g.fgrb -method fs -m 100 -budget 5000 -estimate degree
//	fsample -url http://localhost:8080 -method fs -m 64 -budget 2000 -estimate clustering
//	fsample -graph g.fg -method single -budget 1000 -estimate assortativity
//	fsample -url http://localhost:8080 -graph web -remote-job -follow \
//	    -method fs -m 64 -budget 100000 -estimate avgdegree
//
// Methods: fs, dfs, single, multiple, mhrw, rv, re.
// Estimates: degree (CCDF of the in/out/sym distribution), clustering,
// assortativity, avgdegree.
//
// With -url, -graph names a hosted graph on a multi-graph graphd (empty
// selects the server's default graph); without -url it is a local file
// path.
//
// Remote crawls are batched: -cache-cap bounds the client's vertex LRU,
// -batch sets the prefetch batch size, and -prefetch controls how often
// FS prefetches its frontier's neighborhoods (default m/2 when remote).
//
// -remote-job submits the run to the graphd job service instead of
// crawling client-side: the server samples the selected hosted graph in
// a worker pool and fsample waits for the job — streaming progress over
// SSE with -follow (one line per state change or checkpoint), otherwise
// waiting silently (SSE when available, else polling every -poll).
// Only -method, -m, -budget, -seed, -estimate and -graph apply in this
// mode (the client-crawl flags -cache-cap/-batch/-prefetch/-kind/
// -diagnose are meaningless server-side, and -hit-ratio is rejected
// rather than ignored). -timeout bounds the whole run (local or remote)
// through a context; on expiry, in-flight HTTP requests abort and local
// sampling unwinds at the next budget charge.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"frontier/internal/core"
	"frontier/internal/crawl"
	"frontier/internal/estimate"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/jobs"
	"frontier/internal/netgraph"
	"frontier/internal/stats"
	"frontier/internal/walkstats"
	"frontier/internal/xrand"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "local graph file, or hosted graph name with -url (empty = server default)")
		url       = flag.String("url", "", "remote graphd base URL")
		methodStr = flag.String("method", "fs", "fs | dfs | single | multiple | mhrw | rv | re")
		m         = flag.Int("m", 100, "walkers (fs, dfs, multiple)")
		budget    = flag.Float64("budget", 1000, "sampling budget B")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		est       = flag.String("estimate", "degree", "degree | clustering | assortativity | avgdegree")
		kindStr   = flag.String("kind", "sym", "degree kind: in | out | sym")
		hitRatio  = flag.Float64("hit-ratio", 1, "random-vertex hit ratio h")
		diagnose  = flag.Bool("diagnose", false, "report convergence diagnostics (Geweke z, ESS) on the walk")
		cacheCap  = flag.Int("cache-cap", netgraph.DefaultCacheCapacity, "remote client vertex-cache capacity (LRU records; <= 0 unbounded)")
		batchSize = flag.Int("batch", netgraph.DefaultBatchSize, "remote client prefetch batch size")
		prefetch  = flag.Int("prefetch", -1, "FS frontier-prefetch interval in steps (0 off, -1 auto: m/2 when remote)")
		remoteJob = flag.Bool("remote-job", false, "submit the run to graphd's job service (-url) and wait for it instead of crawling client-side")
		follow    = flag.Bool("follow", false, "with -remote-job, stream job progress over SSE and print each update")
		poll      = flag.Duration("poll", 0, "with -remote-job, polling interval when SSE is unavailable (0 = client default)")
		timeout   = flag.Duration("timeout", 0, "overall run timeout (0 = none); cancels in-flight requests and unwinds sampling")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *remoteJob {
		if *url == "" {
			fmt.Fprintln(os.Stderr, "fsample: -remote-job needs -url")
			os.Exit(2)
		}
		// The job service runs the paper's unit cost model server-side;
		// silently dropping a non-default -hit-ratio would make the
		// remote result incomparable to the local run it names.
		if *hitRatio != 1 {
			fmt.Fprintln(os.Stderr, "fsample: -hit-ratio is not supported by -remote-job (the job service runs unit costs)")
			os.Exit(2)
		}
		runRemoteJob(ctx, remoteJobConfig{
			url: *url, graph: *graphPath, method: *methodStr,
			m: *m, budget: *budget, seed: *seed, est: *est,
			follow: *follow, poll: *poll,
		})
		return
	}

	var kind graph.DegreeKind
	switch *kindStr {
	case "in":
		kind = graph.InDeg
	case "out":
		kind = graph.OutDeg
	case "sym":
		kind = graph.SymDeg
	default:
		fmt.Fprintf(os.Stderr, "fsample: unknown degree kind %q\n", *kindStr)
		os.Exit(2)
	}

	// Resolve the graph source: estimators need the richer EdgeView; the
	// session only needs crawl.Source.
	var (
		src      crawl.Source
		view     estimate.EdgeView
		runSafe  func(func() error) error
		isRemote bool
	)
	switch {
	case *url != "":
		// With -url, -graph selects a hosted graph by name rather than a
		// local file.
		c, err := netgraph.Dial(*url, nil,
			netgraph.WithCacheCapacity(*cacheCap),
			netgraph.WithBatchSize(*batchSize),
			netgraph.WithGraph(*graphPath),
			netgraph.WithContext(ctx))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		src, view = c, c
		runSafe = c.RunSafely
		isRemote = true
	case *graphPath != "":
		g, err := graphio.LoadFile(*graphPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		src, view = g, g
		runSafe = func(fn func() error) error { return fn() }
	default:
		fmt.Fprintln(os.Stderr, "fsample: need -graph or -url")
		os.Exit(2)
	}

	model := crawl.UnitCosts()
	model.VertexHitRatio = *hitRatio
	sess := crawl.NewSessionContext(ctx, src, *budget, model, xrand.New(*seed))

	// -prefetch -1 resolves to m/2 on remote graphs (batch the frontier's
	// neighborhoods to hide round-trip latency) and off for local files,
	// where prefetch advice is a no-op that still costs enumeration. A
	// cache too small to hold the frontier working set makes prefetching
	// counterproductive (each round evicts what the last one fetched), so
	// auto mode also stays off there; -prefetch N forces it regardless.
	prefetchEvery := *prefetch
	if prefetchEvery < 0 {
		prefetchEvery = 0
		if isRemote && (*cacheCap <= 0 || *cacheCap >= 4**m) {
			prefetchEvery = *m / 2
		}
	}

	var sampler core.EdgeSampler
	var vsampler core.VertexSampler
	switch *methodStr {
	case "fs":
		sampler = &core.FrontierSampler{M: *m, PrefetchEvery: prefetchEvery}
	case "dfs":
		sampler = &core.DistributedFS{M: *m}
	case "single":
		sampler = &core.SingleRW{}
	case "multiple":
		sampler = &core.MultipleRW{M: *m}
	case "mhrw":
		vsampler = &core.MetropolisRW{}
	case "rv":
		vsampler = core.RandomVertexSampler{}
	case "re":
		sampler = core.RandomEdgeSampler{}
	default:
		fmt.Fprintf(os.Stderr, "fsample: unknown method %q\n", *methodStr)
		os.Exit(2)
	}

	ignoreExhaustion := func(err error) error {
		if errors.Is(err, crawl.ErrBudgetExhausted) {
			return nil
		}
		return err
	}

	switch *est {
	case "degree":
		if vsampler != nil {
			e := estimate.NewPlainDegreeDist(view, kind)
			if err := runSafe(func() error { return ignoreExhaustion(vsampler.RunVertices(sess, e.ObserveVertex)) }); err != nil {
				fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
				os.Exit(1)
			}
			printCCDF(e.CCDF())
		} else {
			e := estimate.NewDegreeDist(view, kind)
			if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
				fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
				os.Exit(1)
			}
			printCCDF(e.CCDF())
		}
	case "clustering":
		requireEdgeSampler(sampler, *methodStr)
		e := estimate.NewClustering(view)
		if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("global clustering estimate: %.5f\n", e.Estimate())
	case "assortativity":
		requireEdgeSampler(sampler, *methodStr)
		e := estimate.NewAssortativity(view, false)
		if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("assortativity estimate: %.5f\n", e.Estimate())
	case "avgdegree":
		requireEdgeSampler(sampler, *methodStr)
		e := estimate.NewAvgDegree(view)
		if err := runSafe(func() error { return ignoreExhaustion(sampler.Run(sess, e.Observe)) }); err != nil {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("average degree estimate: %.3f\n", e.Estimate())
	default:
		fmt.Fprintf(os.Stderr, "fsample: unknown estimate %q\n", *est)
		os.Exit(2)
	}

	st := sess.Stats()
	fmt.Printf("budget spent: %.0f (steps %d, vertex queries %d, misses %d)\n",
		st.Spent, st.Steps, st.VertexQueries, st.VertexMisses)
	if isRemote {
		c := src.(*netgraph.Client)
		hits, misses := c.CacheStats()
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("remote fetches: %d records in %d round trips (cache %d/%d, hit ratio %.2f)\n",
			c.Fetches(), c.Roundtrips(), c.CacheLen(), c.CacheCapacity(), ratio)
	}

	if *diagnose && sampler != nil {
		// Re-run the same walk (same seed) collecting the 1/deg series
		// the estimators weight by, and report stationarity diagnostics.
		dsess := crawl.NewSessionContext(ctx, src, *budget, model, xrand.New(*seed))
		var series []float64
		err := runSafe(func() error {
			return ignoreExhaustion(sampler.Run(dsess, func(u, v int) {
				series = append(series, 1/float64(view.SymDegree(v)))
			}))
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsample: diagnostics: %v\n", err)
			os.Exit(1)
		}
		if z, err := walkstats.Geweke(series, 0.1, 0.5); err == nil {
			verdict := "consistent with stationarity"
			if z > 2 || z < -2 {
				verdict = "NOT stationary (|z| > 2) — consider a larger m or budget"
			}
			fmt.Printf("Geweke z: %.2f (%s)\n", z, verdict)
		} else {
			fmt.Printf("Geweke z: %v\n", err)
		}
		if ess, err := walkstats.EffectiveSampleSize(series); err == nil {
			fmt.Printf("effective sample size: %.0f of %d walk samples\n", ess, len(series))
		}
	}
}

// remoteJobConfig carries the flags that apply to a server-side job
// run.
type remoteJobConfig struct {
	url    string
	graph  string // hosted graph name ("" = server default)
	method string
	m      int
	budget float64
	seed   uint64
	est    string
	follow bool
	poll   time.Duration
}

// runRemoteJob submits the run as a server-side sampling job, waits for
// it (streaming progress with -follow) and prints the final status.
func runRemoteJob(ctx context.Context, cfg remoteJobConfig) {
	c, err := netgraph.Dial(cfg.url, nil,
		netgraph.WithContext(ctx),
		netgraph.WithGraph(cfg.graph),
		netgraph.WithPollInterval(cfg.poll))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		os.Exit(1)
	}
	if cfg.est == "degree" {
		// The job service computes scalar estimates; default to the
		// average-degree one rather than rejecting fsample's default.
		cfg.est = "avgdegree"
	}
	st, err := c.SubmitJob(ctx, jobs.Spec{
		Graph: cfg.graph, Method: cfg.method, M: cfg.m,
		Budget: cfg.budget, Seed: cfg.seed, Estimate: cfg.est,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("submitted %s (%s on %q, m=%d, budget %.0f)\n",
		st.ID, cfg.method, st.Spec.Graph, cfg.m, cfg.budget)

	var final jobs.Status
	if cfg.follow {
		final, err = c.FollowJob(ctx, st.ID, func(s jobs.Status) {
			line := fmt.Sprintf("%s: %s  spent %.0f/%.0f  edges %d",
				s.ID, s.State, s.Spent, s.Spec.Budget, s.Edges)
			if s.Estimate != nil {
				line += fmt.Sprintf("  estimate %.5f", *s.Estimate)
			}
			fmt.Println(line)
		})
		if err != nil && ctx.Err() == nil {
			// The stream broke without our context expiring (old server,
			// proxy): fall back to waiting quietly. PollJob, not WaitJob —
			// the SSE path just failed, don't try it a second time.
			fmt.Fprintf(os.Stderr, "fsample: event stream unavailable (%v); polling\n", err)
			final, err = c.PollJob(ctx, st.ID, cfg.poll)
		}
	} else {
		final, err = c.WaitJob(ctx, st.ID, cfg.poll)
	}
	if err != nil {
		// The run is bounded by -timeout: tell the server to stop too.
		if _, cerr := c.CancelJob(context.Background(), st.ID); cerr == nil {
			fmt.Fprintf(os.Stderr, "fsample: %v (job %s cancelled)\n", err, st.ID)
		} else {
			fmt.Fprintf(os.Stderr, "fsample: %v\n", err)
		}
		os.Exit(1)
	}
	if final.State != jobs.StateDone {
		fmt.Fprintf(os.Stderr, "fsample: job %s ended %s: %s\n", final.ID, final.State, final.Error)
		os.Exit(1)
	}
	if final.Estimate != nil {
		fmt.Printf("%s estimate: %.5f\n", final.Spec.Estimate, *final.Estimate)
	}
	fmt.Printf("budget spent: %.0f (%d edges sampled, edge hash %s)\n", final.Spent, final.Edges, final.EdgeHash)
}

func requireEdgeSampler(s core.EdgeSampler, name string) {
	if s == nil {
		fmt.Fprintf(os.Stderr, "fsample: method %q emits vertices; this estimate needs an edge sampler\n", name)
		os.Exit(2)
	}
}

func printCCDF(gamma []float64) {
	fmt.Println("degree\tCCDF")
	for _, i := range stats.LogBuckets(len(gamma), 4) {
		if gamma[i] <= 0 {
			continue
		}
		fmt.Printf("%d\t%.6g\n", i, gamma[i])
	}
}
