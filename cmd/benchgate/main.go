// Command benchgate parses `go test -bench` output into a committed
// JSON form and gates CI on benchmark regressions against a baseline.
//
// Parse mode — convert a bench run's text output into JSON (run with
// -benchmem so the B/op and allocs/op columns are captured too):
//
//	go test -bench . -benchtime=20000x -count=5 -benchmem . | tee bench.txt
//	benchgate -parse bench.txt -out BENCH_5.json
//
// Compare mode — fail (exit 1) when any gated benchmark's median
// regressed more than -max-regress over the committed baseline, on
// any metric both sets sampled: ns/op always, B/op and allocs/op when
// both came from -benchmem runs (a format-version-1 baseline without
// allocation samples gates time only). An allocation-free baseline
// that starts allocating regresses unconditionally:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_5.json \
//	    -gate '^BenchmarkMethodObservations|^BenchmarkAblation' -max-regress 0.20
//
// Emit mode — render a JSON file back into go-bench text (so
// benchstat can print its comparison table against a fresh run):
//
//	benchgate -emit-text BENCH_baseline.json > baseline.txt
//
// Medians over -count=5 samples make the gate robust to scheduler
// noise; the baseline is refreshed by committing a fresh BENCH_5.json
// artifact as BENCH_baseline.json whenever the benchmarks or the CI
// hardware legitimately change.
package main

import (
	"flag"
	"fmt"
	"os"

	"frontier/internal/benchfmt"
)

func main() {
	var (
		parse      = flag.String("parse", "", "bench text file to parse into JSON")
		out        = flag.String("out", "", "with -parse: JSON output path (default stdout)")
		baseline   = flag.String("baseline", "", "baseline JSON for compare mode")
		current    = flag.String("current", "", "current JSON for compare mode")
		gate       = flag.String("gate", ".", "regexp of benchmark names the regression gate applies to")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum allowed median regression per metric (0.20 = +20%)")
		emitText   = flag.String("emit-text", "", "JSON file to render back into go-bench text on stdout")
	)
	flag.Parse()

	switch {
	case *parse != "":
		set, err := benchfmt.ParseFile(*parse)
		if err != nil {
			fatal(err)
		}
		if len(set.Benchmarks) == 0 {
			fatal(fmt.Errorf("benchgate: no benchmark results in %s", *parse))
		}
		data, err := set.Marshal()
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fmt.Print(string(data))
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(set.Benchmarks), *out)

	case *emitText != "":
		set, err := benchfmt.LoadFile(*emitText)
		if err != nil {
			fatal(err)
		}
		fmt.Print(set.GoBenchText())

	case *baseline != "" && *current != "":
		base, err := benchfmt.LoadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := benchfmt.LoadFile(*current)
		if err != nil {
			fatal(err)
		}
		report, err := benchfmt.Compare(base, cur, *gate, *maxRegress)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Table())
		if len(report.Regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%%\n",
				len(report.Regressions), *maxRegress*100)
			os.Exit(1)
		}
		if len(report.Missing) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d gated baseline benchmark(s) missing from the current run\n",
				len(report.Missing))
			os.Exit(1)
		}
		fmt.Printf("benchgate: %d gated benchmarks within %.0f%% of baseline\n",
			len(report.Compared), *maxRegress*100)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
