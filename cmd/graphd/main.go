// Command graphd serves a graph over HTTP so that samplers can crawl it
// across the network, mimicking an online social network's API (the
// paper's access model: querying a vertex reveals its incoming and
// outgoing edges).
//
// Usage:
//
//	graphd -graph flickr.fgrb -groups flickr.fgrb.groups -addr :8080
//	graphd -dataset flickr -scale 0.2 -addr :8080   # generate in memory
//
// Endpoints:
//
//	GET  /v1/meta        — graph metadata
//	GET  /v1/vertex/{id} — a vertex's degrees, neighbors and groups
//	POST /v1/vertices    — batch vertex fetch, body {"ids": [...]}
//	GET  /v1/stats       — request counters
//
// Responses are gzip-compressed when the client accepts it. -latency
// injects a fixed per-request delay to model a slow OSN API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"frontier/internal/gen"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/netgraph"
	"frontier/internal/xrand"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file to serve")
		groupsPath = flag.String("groups", "", "optional group labels file")
		dataset    = flag.String("dataset", "", "generate and serve a dataset instead of loading a file")
		scale      = flag.Float64("scale", 1, "dataset scale factor")
		seed       = flag.Uint64("seed", 1, "dataset seed")
		addr       = flag.String("addr", ":8080", "listen address")
		latency    = flag.Duration("latency", 0, "injected per-request latency (models a slow OSN API, e.g. 5ms)")
	)
	flag.Parse()

	var (
		g    *graph.Graph
		gl   *graph.GroupLabels
		name string
		err  error
	)
	switch {
	case *dataset != "":
		ds, derr := gen.ByName(*dataset, xrand.New(*seed), gen.Scale(*scale))
		if derr != nil {
			fmt.Fprintf(os.Stderr, "graphd: %v\n", derr)
			os.Exit(2)
		}
		g, gl, name = ds.Graph, ds.Groups, ds.Name
	case *graphPath != "":
		name = *graphPath
		g, err = graphio.LoadFile(*graphPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphd: %v\n", err)
			os.Exit(1)
		}
		if *groupsPath != "" {
			f, ferr := os.Open(*groupsPath)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "graphd: %v\n", ferr)
				os.Exit(1)
			}
			gl, err = graphio.ReadGroupsText(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphd: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "graphd: need -graph or -dataset")
		os.Exit(2)
	}

	var opts []netgraph.ServerOption
	if *latency > 0 {
		opts = append(opts, netgraph.WithLatency(*latency))
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      netgraph.NewServer(name, g, gl, opts...),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("graphd: serving %q (%d vertices, %d edges) on %s (latency %s)",
		name, g.NumVertices(), g.NumDirectedEdges(), *addr, *latency)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("graphd: %v", err)
	}
}
