// Command graphd serves a catalog of graphs over HTTP so that samplers
// can crawl them across the network, mimicking an online social
// network's API (the paper's access model: querying a vertex reveals
// its incoming and outgoing edges), and runs a concurrent sampling-job
// service routing jobs to any hosted graph.
//
// Usage:
//
//	graphd -graph flickr.fgrb -groups flickr.fgrb.groups -addr :8080
//	graphd -dataset flickr -scale 0.2 -addr :8080   # generate in memory
//	graphd -dataset lj -workers 8 -checkpoint-dir /var/lib/graphd/jobs
//	graphd -graphs 'web=web.fgrb,social=gen:flickr:0.2'   # multi-graph
//	graphd -graphs 'lj=lj.fcsr,orkut=orkut.fcsr'    # lazy out-of-core hosting
//	graphd -empty                                   # hot-load via POST /v1/graphs
//
// -graphs hosts several named graphs in one process: a comma-separated
// list of name=spec entries, where spec is a graph file path or
// "gen:dataset[:scale]" for an in-memory synthetic dataset. The first
// graph defined (by -graph/-dataset, else the first -graphs entry)
// becomes the default that unqualified requests route to. More graphs
// can be hot-loaded at runtime via POST /v1/graphs and evicted via
// DELETE /v1/graphs/{name} (refused with 409 while running jobs pin
// them).
//
// Graphs in the .fcsr binary segment format (written by graphgen
// -format fcsr or frontier convert) are hosted lazily and out of core:
// registration reads only the 256-byte header, the first request
// memory-maps the file zero-copy, and eviction unmaps it — a catalog
// of cold segments costs no resident memory, so one graphd can front
// far more graph bytes than RAM.
//
// See docs/API.md for the complete endpoint reference. Responses are
// gzip-compressed when the client accepts it. -latency injects a fixed
// per-request delay to model a slow OSN API (the observability
// endpoints /healthz and /metrics, and the SSE job-event stream, are
// exempt). -faults goes further and models an unreliable one: seeded,
// deterministic 429/5xx bursts, dropped connections, slow responses and
// flap schedules on the data-plane endpoints (see netgraph.WithFaults),
// with injected counts surfaced in /v1/stats and /metrics — the test
// bench for the client's resilience middleware chain.
// -workers sizes the job worker pool (0 disables the job
// service). With -checkpoint-dir, jobs checkpoint to disk and resume
// across restarts: on SIGINT/SIGTERM running jobs are paused at their
// next step boundary and a restarted graphd picks them up where they
// left off.
//
// Every job carries a live estimation runtime (internal/live): its
// current estimate, confidence interval and convergence diagnostics
// are served at GET /v1/jobs/{id}/estimates and streamed as "estimate"
// frames on the job's SSE event stream, and a job spec with a
// stop_rule (e.g. "ci_halfwidth<=0.01") halts adaptively the moment
// its estimate converges — estimator and monitor state ride the same
// checkpoints, so adaptive jobs also pause and resume losslessly.
//
// The sweep service (enabled with the job service) reproduces paper
// figures end to end: POST /v1/sweeps with {"artifact":"fig5"} plans a
// DAG of sampling jobs (method × Monte Carlo run), aggregates them
// into the figure's rows, evaluates the paper's shape checks, and
// writes JSON + CSV artifacts served at GET
// /v1/sweeps/{id}/artifacts/{name}. With -checkpoint-dir, sweep
// manifests persist under <checkpoint-dir>/sweeps and artifacts under
// -artifacts-dir (default <checkpoint-dir>/artifacts); a killed graphd
// resumes interrupted sweeps without re-running completed nodes, and
// the resumed artifacts are byte-identical. See docs/EXPERIMENTS.md
// for the artifact ↔ paper-figure map.
//
// Observability: logs are structured (log/slog; -log-level and
// -log-format select severity and text/json encoding), every request
// is traced by an X-Trace-Id header (adopted from the client or
// minted) that links request log lines, job statuses and the span
// timeline at GET /v1/jobs/{id}/trace, request and job latency
// histograms ride /metrics, and -pprof serves net/http/pprof on a
// separate (typically loopback-only) listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"frontier/internal/gen"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/jobs"
	"frontier/internal/netgraph"
	"frontier/internal/obs"
	"frontier/internal/sweep"
	"frontier/internal/xrand"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file to serve as the default graph")
		groupsPath = flag.String("groups", "", "optional group labels file for the default graph")
		dataset    = flag.String("dataset", "", "generate and serve a dataset instead of loading a file")
		scale      = flag.Float64("scale", 1, "dataset scale factor")
		seed       = flag.Uint64("seed", 1, "dataset seed")
		graphsFlag = flag.String("graphs", "", "additional named graphs: name=path or name=gen:dataset[:scale], comma-separated")
		empty      = flag.Bool("empty", false, "start with an empty catalog (hot-load graphs via POST /v1/graphs)")
		addr       = flag.String("addr", ":8080", "listen address")
		latency    = flag.Duration("latency", 0, "injected per-request latency (models a slow OSN API, e.g. 5ms)")
		faults     = flag.String("faults", "", "seeded deterministic fault injection on the data plane, e.g. 'rate=0.1,seed=7,statuses=429+500+503,burst=3,drop=0.2,slow=0.05:5ms,flap=200:40'")
		workers    = flag.Int("workers", 4, "sampling-job worker pool size (0 disables the job and sweep services)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for job checkpoints and sweep manifests; jobs and sweeps resume across restarts")
		artDir     = flag.String("artifacts-dir", "", "directory for sweep figure artifacts (default: <checkpoint-dir>/artifacts, or a temp dir)")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fatal(err)
	}

	cat := netgraph.NewCatalog()

	// The default graph, when configured, is added first so unqualified
	// requests route to it.
	switch {
	case *dataset != "":
		ds, derr := gen.ByName(*dataset, xrand.New(*seed), gen.Scale(*scale))
		if derr != nil {
			fatal(derr)
		}
		mustAdd(cat, ds.Name, ds.Graph, ds.Groups)
	case *graphPath != "":
		// .fcsr segments are hosted lazily: register by header now, map
		// the file into memory on first request (embedded group labels
		// ride the segment; -groups is for the text formats).
		if graphio.FormatForPath(*graphPath) == graphio.FormatFCSR && *groupsPath == "" {
			if err := cat.AddPath(*graphPath, *graphPath); err != nil {
				fatal(err)
			}
			break
		}
		g, err := graphio.LoadFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		var gl *graph.GroupLabels
		if *groupsPath != "" {
			f, ferr := os.Open(*groupsPath)
			if ferr != nil {
				fatal(ferr)
			}
			gl, err = graphio.ReadGroupsText(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
		}
		mustAdd(cat, *graphPath, g, gl)
	}

	if *graphsFlag != "" {
		if err := loadGraphsFlag(cat, *graphsFlag, *seed); err != nil {
			fatal(err)
		}
	}
	if cat.Len() == 0 && !*empty {
		fmt.Fprintln(os.Stderr, "graphd: need -graph, -dataset or -graphs (or -empty to start with no graphs)")
		os.Exit(2)
	}

	opts := []netgraph.ServerOption{netgraph.WithLogging(logger)}
	if *latency > 0 {
		opts = append(opts, netgraph.WithLatency(*latency))
	}
	if *faults != "" {
		spec, err := netgraph.ParseFaultSpec(*faults)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, netgraph.WithFaults(spec))
		logger.Info("injecting faults", "spec", *faults)
	}
	var mgr *jobs.Manager
	var sweeps *sweep.Manager
	if *workers > 0 {
		mopts := []jobs.Option{
			jobs.WithWorkers(*workers),
			jobs.WithResolver(cat),
			jobs.WithLogger(logger),
		}
		if *ckptDir != "" {
			mopts = append(mopts, jobs.WithCheckpointDir(*ckptDir))
		}
		var err error
		mgr, err = jobs.NewManager(nil, mopts...)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, netgraph.WithJobs(mgr))
		logger.Info("job service started",
			"workers", *workers, "jobs_resumed", mgr.ActiveJobs(), "checkpoint_dir", *ckptDir)

		// The sweep service plans paper-figure DAGs over the job
		// manager. Its manifests live next to the job checkpoints so a
		// restarted graphd resumes interrupted sweeps along with their
		// jobs.
		sopts := []sweep.Option{sweep.WithLogger(logger)}
		if *ckptDir != "" {
			sopts = append(sopts, sweep.WithDir(*ckptDir+"/sweeps"))
		}
		if *artDir != "" {
			sopts = append(sopts, sweep.WithArtifactDir(*artDir))
		}
		sweeps, err = sweep.NewManager(mgr, cat, sopts...)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, netgraph.WithSweeps(sweeps))
		logger.Info("sweep service started", "artifacts", sweep.Supported())
	}
	if *pprofAddr != "" {
		// The debug mux listens on its own (typically loopback-only)
		// address so profiling endpoints never share the public listener.
		go func() {
			dbg := &http.Server{
				Addr:              *pprofAddr,
				Handler:           obs.DebugMux(),
				ReadHeaderTimeout: 10 * time.Second,
			}
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: netgraph.NewCatalogServer(cat, opts...),
		// ReadHeaderTimeout (not ReadTimeout) keeps slow-loris
		// protection without arming a whole-connection read deadline:
		// ReadTimeout would sever the long-lived SSE stream at
		// GET /v1/jobs/{id}/events after 10s and cut off large
		// POST /v1/graphs bodies on slow links. WriteTimeout stays off
		// for the same streaming reason; the SSE handler additionally
		// clears per-request deadlines for servers configured otherwise.
		ReadHeaderTimeout: 10 * time.Second,
	}
	for _, info := range cat.List() {
		logger.Info("hosting graph",
			"graph", info.Name, "default", info.Default,
			"vertices", info.NumVertices, "directed_edges", info.NumDirectedEdges)
	}
	logger.Info("serving", "graphs", cat.Len(), "addr", *addr, "latency", *latency)

	// Graceful shutdown: pause and checkpoint running jobs, then drain
	// the listener.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Info("shutting down")
		// Freeze sweeps first so their manifests settle before the job
		// manager checkpoints the underlying jobs.
		if sweeps != nil {
			sweeps.Stop()
		}
		if mgr != nil {
			mgr.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		close(done)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	}
	<-done
}

// loadGraphsFlag parses the -graphs value: comma-separated name=spec
// entries, spec being a graph file path or "gen:dataset[:scale]".
func loadGraphsFlag(cat *netgraph.Catalog, flagVal string, seed uint64) error {
	for _, entry := range strings.Split(flagVal, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok || name == "" || spec == "" {
			return fmt.Errorf("graphd: bad -graphs entry %q (want name=path or name=gen:dataset[:scale])", entry)
		}
		if dsSpec, isGen := strings.CutPrefix(spec, "gen:"); isGen {
			dsName, scaleStr, hasScale := strings.Cut(dsSpec, ":")
			sc := 1.0
			if hasScale {
				var err error
				if sc, err = strconv.ParseFloat(scaleStr, 64); err != nil {
					return fmt.Errorf("graphd: bad scale in -graphs entry %q: %v", entry, err)
				}
			}
			ds, err := gen.ByName(dsName, xrand.New(seed), gen.Scale(sc))
			if err != nil {
				return fmt.Errorf("graphd: -graphs entry %q: %w", entry, err)
			}
			if err := cat.Add(name, ds.Graph, ds.Groups); err != nil {
				return err
			}
			continue
		}
		if graphio.FormatForPath(spec) == graphio.FormatFCSR {
			// Lazy out-of-core hosting: only the segment header is read
			// here; the file is memory-mapped on first access.
			if err := cat.AddPath(name, spec); err != nil {
				return fmt.Errorf("graphd: -graphs entry %q: %w", entry, err)
			}
			continue
		}
		g, err := graphio.LoadFile(spec)
		if err != nil {
			return fmt.Errorf("graphd: -graphs entry %q: %w", entry, err)
		}
		if err := cat.Add(name, g, nil); err != nil {
			return err
		}
	}
	return nil
}

// mustAdd adds a graph to the catalog or exits.
func mustAdd(cat *netgraph.Catalog, name string, g *graph.Graph, gl *graph.GroupLabels) {
	if err := cat.Add(name, g, gl); err != nil {
		fatal(err)
	}
}

// fatal prints err and exits 1.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "graphd: %v\n", err)
	os.Exit(1)
}
