// Command graphd serves a graph over HTTP so that samplers can crawl it
// across the network, mimicking an online social network's API (the
// paper's access model: querying a vertex reveals its incoming and
// outgoing edges), and runs a concurrent sampling-job service over the
// served graph.
//
// Usage:
//
//	graphd -graph flickr.fgrb -groups flickr.fgrb.groups -addr :8080
//	graphd -dataset flickr -scale 0.2 -addr :8080   # generate in memory
//	graphd -dataset lj -workers 8 -checkpoint-dir /var/lib/graphd/jobs
//
// Endpoints:
//
//	GET  /v1/meta             — graph metadata
//	GET  /v1/vertex/{id}      — a vertex's degrees, neighbors and groups
//	POST /v1/vertices         — batch vertex fetch, body {"ids": [...]}
//	GET  /v1/stats            — request counters
//	GET  /healthz             — liveness: vertex count, uptime, active jobs
//	POST /v1/jobs             — submit a sampling job (body: job spec)
//	GET  /v1/jobs/{id}        — job status and partial estimates
//	POST /v1/jobs/{id}/cancel — cancel a job
//
// Responses are gzip-compressed when the client accepts it. -latency
// injects a fixed per-request delay to model a slow OSN API. -workers
// sizes the job worker pool (0 disables the job service). With
// -checkpoint-dir, jobs checkpoint to disk and resume across restarts:
// on SIGINT/SIGTERM running jobs are paused at their next step boundary
// and a restarted graphd picks them up where they left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"frontier/internal/gen"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/jobs"
	"frontier/internal/netgraph"
	"frontier/internal/xrand"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file to serve")
		groupsPath = flag.String("groups", "", "optional group labels file")
		dataset    = flag.String("dataset", "", "generate and serve a dataset instead of loading a file")
		scale      = flag.Float64("scale", 1, "dataset scale factor")
		seed       = flag.Uint64("seed", 1, "dataset seed")
		addr       = flag.String("addr", ":8080", "listen address")
		latency    = flag.Duration("latency", 0, "injected per-request latency (models a slow OSN API, e.g. 5ms)")
		workers    = flag.Int("workers", 4, "sampling-job worker pool size (0 disables the job service)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for job checkpoints; jobs resume across restarts")
	)
	flag.Parse()

	var (
		g    *graph.Graph
		gl   *graph.GroupLabels
		name string
		err  error
	)
	switch {
	case *dataset != "":
		ds, derr := gen.ByName(*dataset, xrand.New(*seed), gen.Scale(*scale))
		if derr != nil {
			fmt.Fprintf(os.Stderr, "graphd: %v\n", derr)
			os.Exit(2)
		}
		g, gl, name = ds.Graph, ds.Groups, ds.Name
	case *graphPath != "":
		name = *graphPath
		g, err = graphio.LoadFile(*graphPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphd: %v\n", err)
			os.Exit(1)
		}
		if *groupsPath != "" {
			f, ferr := os.Open(*groupsPath)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "graphd: %v\n", ferr)
				os.Exit(1)
			}
			gl, err = graphio.ReadGroupsText(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphd: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "graphd: need -graph or -dataset")
		os.Exit(2)
	}

	var opts []netgraph.ServerOption
	if *latency > 0 {
		opts = append(opts, netgraph.WithLatency(*latency))
	}
	var mgr *jobs.Manager
	if *workers > 0 {
		mopts := []jobs.Option{jobs.WithWorkers(*workers)}
		if *ckptDir != "" {
			mopts = append(mopts, jobs.WithCheckpointDir(*ckptDir))
		}
		mgr, err = jobs.NewManager(g, mopts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphd: %v\n", err)
			os.Exit(1)
		}
		opts = append(opts, netgraph.WithJobs(mgr))
		log.Printf("graphd: job service: %d workers, %d jobs resumed (checkpoint dir %q)",
			*workers, mgr.ActiveJobs(), *ckptDir)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      netgraph.NewServer(name, g, gl, opts...),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("graphd: serving %q (%d vertices, %d edges) on %s (latency %s)",
		name, g.NumVertices(), g.NumDirectedEdges(), *addr, *latency)

	// Graceful shutdown: pause and checkpoint running jobs, then drain
	// the listener.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("graphd: shutting down")
		if mgr != nil {
			mgr.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		close(done)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("graphd: %v", err)
	}
	<-done
}
