// Command fsexp regenerates the paper's tables and figures.
//
// Usage:
//
//	fsexp -exp fig5                 # one artifact
//	fsexp -exp all                  # everything, paper order
//	fsexp -exp table2 -runs 1000    # more Monte Carlo runs
//	fsexp -list                     # available artifact ids
//
// Output is a plain-text table per artifact (the same rows/series the
// paper plots), followed by the shape checks that encode the paper's
// qualitative claims. Exit status is non-zero if any check fails.
//
// With -remote the work is delegated to a running graphd sweep
// service instead of the in-process Monte Carlo engine:
//
//	fsexp -remote http://localhost:8080 -exp fig5
//	fsexp -remote http://localhost:8080 -exp fig5 -artifacts-dir out/
//
// Each requested artifact becomes one sweep (POST /v1/sweeps); fsexp
// follows the SSE progress stream, downloads the figure artifacts,
// renders the same tables and [PASS]/[FAIL] check lines, and exits
// non-zero if any check failed. Only sweep-runnable artifacts are
// accepted remotely (see docs/EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"frontier/internal/experiments"
	"frontier/internal/gen"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "artifact id (table1, fig1, ... , table4) or 'all'")
		seed   = flag.Uint64("seed", 1, "deterministic seed")
		scale  = flag.Float64("scale", 1, "dataset scale factor")
		runs   = flag.Int("runs", 0, "Monte Carlo runs per point (0 = default 400; paper used 10000)")
		trials = flag.Int("trials", 0, "Monte Carlo trials for table4 (0 = default 400000)")
		list   = flag.Bool("list", false, "list artifact ids and exit")

		remote  = flag.String("remote", "", "graphd base URL; run artifacts as server-side sweeps instead of in-process")
		graph   = flag.String("graph", "", "catalog graph name for -remote sweeps (empty = server default)")
		saveDir = flag.String("artifacts-dir", "", "with -remote, also save downloaded figure artifacts here")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		Seed:   *seed,
		Scale:  gen.Scale(*scale),
		Runs:   *runs,
		Trials: *trials,
	}

	if *remote != "" {
		// The sweep service expands "all" itself, so it stays one sweep.
		var ids []string
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
		failed := runRemote(*remote, *graph, *saveDir, ids, *seed, *runs)
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "fsexp: %d shape check(s) failed\n", failed)
			os.Exit(1)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := 0
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "fsexp: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s — %s (%.1fs)\n", res.ID, res.Title, time.Since(start).Seconds())
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, strings.Join(res.Header, "\t"))
		for _, row := range res.Rows {
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		tw.Flush()
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		for _, c := range res.Checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
				failed++
			}
			fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fsexp: %d shape check(s) failed\n", failed)
		os.Exit(1)
	}
}
