package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"frontier/internal/netgraph"
	"frontier/internal/sweep"
)

// remoteDoc mirrors the JSON artifact a sweep's figure node writes
// (the sweep package's figureDoc), decoding only what the CLI prints.
type remoteDoc struct {
	ID     string              `json:"id"`
	Paper  string              `json:"paper"`
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   [][]string          `json:"rows"`
	Checks []sweep.CheckResult `json:"checks"`
	Notes  []string            `json:"notes"`
}

// runRemote reproduces artifacts through a graphd sweep service
// instead of the in-process Monte Carlo engine: one sweep per
// requested id ("all" is a single sweep over every supported
// artifact). Returns the number of failed shape checks.
func runRemote(url, graphName, artifactsDir string, ids []string, seed uint64, runs int) int {
	c, err := netgraph.Dial(url, &http.Client{})
	if err != nil {
		fatalf("connecting to %s: %v", url, err)
	}
	ctx := context.Background()
	failed := 0
	for _, id := range ids {
		start := time.Now()
		st, err := c.SubmitSweep(ctx, sweep.Spec{
			Artifact: id, Graph: graphName, Seed: seed, Runs: runs,
		})
		if err != nil {
			fatalf("submitting sweep %q: %v", id, err)
		}
		fmt.Printf("== sweep %s — artifact %s, %d nodes (trace %s)\n",
			st.ID, id, len(st.Nodes), st.TraceID)

		lastDone := -1
		final, err := c.FollowSweep(ctx, st.ID, func(s sweep.Status) {
			if d := s.NodeCounts[sweep.NodeDone]; d != lastDone {
				lastDone = d
				fmt.Printf("  %d/%d nodes done\n", d, len(s.Nodes))
			}
		})
		if err != nil {
			// SSE can be blocked by intermediaries; fall back to polling.
			final, err = c.WaitSweep(ctx, st.ID, 0)
			if err != nil {
				fatalf("waiting for sweep %s: %v", st.ID, err)
			}
		}
		if final.State != sweep.StateDone {
			fatalf("sweep %s ended %s: %s", st.ID, final.State, final.Error)
		}

		for _, a := range final.Artifacts {
			data, err := c.SweepArtifact(ctx, st.ID, a.Name)
			if err != nil {
				fatalf("downloading %s: %v", a.Name, err)
			}
			if artifactsDir != "" {
				if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
					fatalf("creating %s: %v", artifactsDir, err)
				}
				path := filepath.Join(artifactsDir, a.Name)
				if err := os.WriteFile(path, data, 0o644); err != nil {
					fatalf("saving %s: %v", path, err)
				}
				fmt.Printf("  saved %s (%d bytes, sha256 %s)\n", path, len(data), a.SHA256)
			}
			if strings.HasSuffix(a.Name, ".json") {
				printRemoteDoc(data, time.Since(start))
			}
		}
		for _, ch := range final.Checks {
			if !ch.Pass {
				failed++
			}
		}
		fmt.Println()
	}
	return failed
}

// printRemoteDoc renders one downloaded figure artifact the same way
// the in-process path prints its results.
func printRemoteDoc(data []byte, elapsed time.Duration) {
	var doc remoteDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fatalf("decoding artifact: %v", err)
	}
	fmt.Printf("== %s — %s (%.1fs)\n", doc.ID, doc.Title, elapsed.Seconds())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(doc.Header, "\t"))
	for _, row := range doc.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range doc.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	for _, ch := range doc.Checks {
		mark := "PASS"
		if !ch.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", mark, ch.Name, ch.Detail)
	}
}

// fatalf prints a formatted error and exits 1.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsexp: "+format+"\n", args...)
	os.Exit(1)
}
