// Command graphstat prints the Table-1 style summary of a graph file:
// vertex and edge counts, largest connected component, average degree,
// wmax (max degree / average degree), component count, and — with -full
// — the exact assortativity and global clustering coefficient.
//
// Usage:
//
//	graphstat graph.fgrb
//	graphstat -full graph.fg
//	graphstat -header graph.fcsr
//
// With -header on an .fcsr segment only the 256-byte header is read —
// counts print without materializing the graph, however large it is.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"frontier/internal/graphio"
)

func main() {
	full := flag.Bool("full", false, "also compute assortativity and clustering (slower)")
	header := flag.Bool("header", false, "print .fcsr header counts only, without loading the graph")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphstat [-full|-header] <graph file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *header {
		if graphio.FormatForPath(path) != graphio.FormatFCSR {
			fmt.Fprintln(os.Stderr, "graphstat: -header requires an .fcsr segment")
			os.Exit(2)
		}
		info, err := graphio.StatFCSR(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphstat: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("graph:          %s\n", filepath.Base(path))
		fmt.Printf("vertices:       %d\n", info.NumVertices)
		fmt.Printf("directed edges: %d\n", info.NumDirectedEdges)
		fmt.Printf("sym edges:      %d\n", info.NumSymEdges)
		fmt.Printf("groups:         %d\n", info.NumGroups)
		fmt.Printf("file size:      %d bytes\n", info.FileSize)
		return
	}
	g, err := graphio.LoadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphstat: %v\n", err)
		os.Exit(1)
	}
	s := g.Summarize(filepath.Base(path))
	fmt.Printf("graph:          %s\n", s.Name)
	fmt.Printf("vertices:       %d\n", s.NumVertices)
	fmt.Printf("directed edges: %d\n", s.NumEdges)
	fmt.Printf("LCC size:       %d (%.1f%%)\n", s.LCCSize, 100*float64(s.LCCSize)/float64(s.NumVertices))
	fmt.Printf("components:     %d\n", s.NumComponents)
	fmt.Printf("avg degree:     %.2f\n", s.AvgDegree)
	fmt.Printf("wmax:           %.0f\n", s.WMax)
	fmt.Printf("connected:      %v\n", s.Connected)
	fmt.Printf("bipartite:      %v\n", s.Bipartite)
	if *full {
		fmt.Printf("assortativity (directed):   %.4f\n", g.Assortativity())
		fmt.Printf("assortativity (undirected): %.4f\n", g.AssortativityUndirected())
		fmt.Printf("global clustering:          %.4f\n", g.GlobalClustering())
	}
}
