// Command graphgen generates synthetic graph datasets and writes them to
// disk in the library's text or binary format.
//
// Usage:
//
//	graphgen -dataset flickr -scale 1 -seed 7 -out flickr.fgrb
//	graphgen -model ba -n 100000 -m 3 -out ba.fg
//	graphgen -model gnm -n 10000 -edges 50000 -directed -out er.fg
//	graphgen -model gab -n 50000 -out gab.fgrb
//	graphgen -dataset flickr -groups -format fcsr -out flickr.fcsr
//
// The output format follows the -out extension (.fgrb binary, .fcsr
// mappable CSR segment, else text) unless -format overrides it. With
// -groups the planted special-interest group labels (when the dataset
// has them) are written next to the graph as <out>.groups — except in
// the fcsr format, which embeds them in the segment itself so graphd
// can host graph and labels from one mappable file.
package main

import (
	"flag"
	"fmt"
	"os"

	"frontier/internal/gen"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/xrand"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "dataset recipe: flickr, lj, youtube, internet-rlt, hepth, gab")
		model    = flag.String("model", "", "raw model: ba, gnm, config, tree, gab")
		n        = flag.Int("n", 10000, "vertices (raw models)")
		m        = flag.Int("m", 3, "BA attachment / config kmin")
		edges    = flag.Int("edges", 0, "edge count (gnm)")
		alpha    = flag.Float64("alpha", 1.8, "power-law exponent (config)")
		directed = flag.Bool("directed", false, "directed edges (gnm)")
		scale    = flag.Float64("scale", 1, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		out      = flag.String("out", "", "output path (.fgrb = binary, .fcsr = CSR segment, anything else = text)")
		format   = flag.String("format", "", "output format: text, binary, json or fcsr (default: by -out extension)")
		groups   = flag.Bool("groups", false, "also write group labels (<out>.groups sidecar; embedded for fcsr)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -out is required")
		os.Exit(2)
	}
	r := xrand.New(*seed)

	var g *graph.Graph
	var gl *graph.GroupLabels
	switch {
	case *dataset != "":
		ds, err := gen.ByName(*dataset, r, gen.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(2)
		}
		g, gl = ds.Graph, ds.Groups
	case *model != "":
		switch *model {
		case "ba":
			g = gen.BarabasiAlbert(r, *n, *m)
		case "gnm":
			if *edges <= 0 {
				fmt.Fprintln(os.Stderr, "graphgen: gnm needs -edges")
				os.Exit(2)
			}
			g = gen.ErdosRenyiGNM(r, *n, *edges, *directed)
		case "config":
			g = gen.DirectedConfigModel(r, *n, *alpha, *m, *n/10)
		case "tree":
			g = gen.RandomTree(r, *n)
		case "gab":
			g = gen.GAB(r, *n)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown model %q\n", *model)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "graphgen: need -dataset or -model")
		os.Exit(2)
	}

	outFormat := *format
	if outFormat == "" {
		outFormat = graphio.FormatForPath(*out)
	}
	if *groups && gl == nil {
		fmt.Fprintln(os.Stderr, "graphgen: dataset has no group labels")
		os.Exit(1)
	}
	if err := writeGraph(*out, outFormat, g, gl, *groups); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d directed edges\n", *out, g.NumVertices(), g.NumDirectedEdges())

	if outFormat == graphio.FormatFCSR {
		if *groups {
			fmt.Printf("embedded %d groups in the segment\n", gl.NumGroups())
		}
		return
	}
	if *groups {
		gpath := *out + ".groups"
		f, err := os.Create(gpath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		if err := graphio.WriteGroupsText(f, gl); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: writing groups: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: closing groups: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d groups\n", gpath, gl.NumGroups())
	}
}

// writeGraph writes g to path in the named format. For fcsr the group
// labels are embedded in the segment when embedGroups is set; the
// other formats ignore gl (the caller writes the sidecar).
func writeGraph(path, format string, g *graph.Graph, gl *graph.GroupLabels, embedGroups bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case graphio.FormatText:
		err = graphio.WriteText(f, g)
	case graphio.FormatBinary:
		err = graphio.WriteBinary(f, g)
	case graphio.FormatJSON:
		err = graphio.WriteJSON(f, g)
	case graphio.FormatFCSR:
		var embed *graph.GroupLabels
		if embedGroups {
			embed = gl
		}
		err = graphio.WriteFCSR(f, g, embed)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
