// Command graphgen generates synthetic graph datasets and writes them to
// disk in the library's text or binary format.
//
// Usage:
//
//	graphgen -dataset flickr -scale 1 -seed 7 -out flickr.fgrb
//	graphgen -model ba -n 100000 -m 3 -out ba.fg
//	graphgen -model gnm -n 10000 -edges 50000 -directed -out er.fg
//	graphgen -model gab -n 50000 -out gab.fgrb
//
// With -groups the planted special-interest group labels (when the
// dataset has them) are written next to the graph as <out>.groups.
package main

import (
	"flag"
	"fmt"
	"os"

	"frontier/internal/gen"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/xrand"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "dataset recipe: flickr, lj, youtube, internet-rlt, hepth, gab")
		model    = flag.String("model", "", "raw model: ba, gnm, config, tree, gab")
		n        = flag.Int("n", 10000, "vertices (raw models)")
		m        = flag.Int("m", 3, "BA attachment / config kmin")
		edges    = flag.Int("edges", 0, "edge count (gnm)")
		alpha    = flag.Float64("alpha", 1.8, "power-law exponent (config)")
		directed = flag.Bool("directed", false, "directed edges (gnm)")
		scale    = flag.Float64("scale", 1, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		out      = flag.String("out", "", "output path (.fgrb = binary, anything else = text)")
		groups   = flag.Bool("groups", false, "also write group labels to <out>.groups")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -out is required")
		os.Exit(2)
	}
	r := xrand.New(*seed)

	var g *graph.Graph
	var gl *graph.GroupLabels
	switch {
	case *dataset != "":
		ds, err := gen.ByName(*dataset, r, gen.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(2)
		}
		g, gl = ds.Graph, ds.Groups
	case *model != "":
		switch *model {
		case "ba":
			g = gen.BarabasiAlbert(r, *n, *m)
		case "gnm":
			if *edges <= 0 {
				fmt.Fprintln(os.Stderr, "graphgen: gnm needs -edges")
				os.Exit(2)
			}
			g = gen.ErdosRenyiGNM(r, *n, *edges, *directed)
		case "config":
			g = gen.DirectedConfigModel(r, *n, *alpha, *m, *n/10)
		case "tree":
			g = gen.RandomTree(r, *n)
		case "gab":
			g = gen.GAB(r, *n)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown model %q\n", *model)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "graphgen: need -dataset or -model")
		os.Exit(2)
	}

	if err := graphio.SaveFile(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d directed edges\n", *out, g.NumVertices(), g.NumDirectedEdges())

	if *groups {
		if gl == nil {
			fmt.Fprintln(os.Stderr, "graphgen: dataset has no group labels")
			os.Exit(1)
		}
		gpath := *out + ".groups"
		f, err := os.Create(gpath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		if err := graphio.WriteGroupsText(f, gl); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: writing groups: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: closing groups: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d groups\n", gpath, gl.NumGroups())
	}
}
