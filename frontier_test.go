// Integration tests exercising the public facade end to end, the way a
// downstream application would.
package frontier_test

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"frontier"
)

func TestPublicAPIDegreeEstimation(t *testing.T) {
	g := frontier.BarabasiAlbert(frontier.NewRand(1), 5000, 3)
	sess := frontier.NewSession(g, 5000, frontier.UnitCosts(), frontier.NewRand(2))
	est := frontier.NewDegreeDist(g, frontier.SymDeg)
	fs := &frontier.FrontierSampler{M: 64}
	if err := fs.Run(sess, est.Observe); err != nil {
		t.Fatal(err)
	}
	truth := g.DegreeDistribution(frontier.SymDeg)
	got := est.Theta()
	if math.Abs(got[3]-truth[3]) > 0.05 {
		t.Fatalf("theta[3] = %v, want ~%v", got[3], truth[3])
	}
}

func TestPublicAPIAllSamplers(t *testing.T) {
	g := frontier.BarabasiAlbert(frontier.NewRand(3), 1000, 3)
	edgeSamplers := []frontier.EdgeSampler{
		&frontier.FrontierSampler{M: 10},
		&frontier.DistributedFS{M: 10},
		&frontier.ParallelDFS{M: 10},
		&frontier.SingleRW{},
		&frontier.MultipleRW{M: 10},
		&frontier.RandomEdgeSampler{},
		&frontier.BurnIn{Sampler: &frontier.SingleRW{}, W: 5},
	}
	for _, s := range edgeSamplers {
		sess := frontier.NewSession(g, 200, frontier.UnitCosts(), frontier.NewRand(4))
		count := 0
		if err := s.Run(sess, func(u, v int) {
			count++
			if !g.HasSymEdge(u, v) {
				t.Fatalf("%s emitted non-edge", s.Name())
			}
		}); err != nil && !errors.Is(err, frontier.ErrBudgetExhausted) {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if count == 0 {
			t.Fatalf("%s emitted nothing", s.Name())
		}
	}
	vertexSamplers := []frontier.VertexSampler{
		&frontier.MetropolisRW{},
		&frontier.RandomVertexSampler{},
	}
	for _, s := range vertexSamplers {
		sess := frontier.NewSession(g, 200, frontier.UnitCosts(), frontier.NewRand(5))
		count := 0
		if err := s.RunVertices(sess, func(v int) { count++ }); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if count == 0 {
			t.Fatalf("%s emitted nothing", s.Name())
		}
	}
	// Every built-in job method is an ObservationSampler emitting
	// positively weighted observations.
	for _, name := range frontier.DefaultJobMethods().Names() {
		method, ok := frontier.DefaultJobMethods().Get(name)
		if !ok {
			t.Fatalf("method %s not registered", name)
		}
		s := method.Build(frontier.JobSpec{Method: name, M: 4, JumpProb: 0.2})
		sess := frontier.NewSession(g, 200, frontier.UnitCosts(), frontier.NewRand(6))
		count := 0
		err := s.RunObs(sess, func(o frontier.Observation) {
			count++
			if !(o.Weight > 0) {
				t.Fatalf("%s emitted non-positive weight: %+v", name, o)
			}
			if o.Edge && !g.HasSymEdge(o.U, o.V) {
				t.Fatalf("%s emitted a non-edge: %+v", name, o)
			}
			if !o.Edge && o.U != o.V {
				t.Fatalf("%s emitted a vertex observation with U != V: %+v", name, o)
			}
		})
		if err != nil && !errors.Is(err, frontier.ErrBudgetExhausted) {
			t.Fatalf("%s: %v", name, err)
		}
		if count == 0 {
			t.Fatalf("%s emitted nothing", name)
		}
	}
}

func TestPublicAPIEstimators(t *testing.T) {
	r := frontier.NewRand(6)
	g := frontier.BarabasiAlbert(r, 2000, 4)
	groups := frontier.PlantGroups(r, g, 10, 400, 1.0)

	clus := frontier.NewClustering(g)
	asst := frontier.NewAssortativity(g, false)
	grp := frontier.NewGroupDensity(g, groups)
	avg := frontier.NewAvgDegree(g)
	dens := frontier.NewScalarDensity(g, func(v int) bool { return g.SymDegree(v) > 8 })

	sess := frontier.NewSession(g, 50000, frontier.UnitCosts(), frontier.NewRand(7))
	fs := &frontier.FrontierSampler{M: 32}
	if err := fs.Run(sess, func(u, v int) {
		clus.Observe(u, v)
		asst.Observe(u, v)
		grp.Observe(u, v)
		avg.Observe(u, v)
		dens.Observe(u, v)
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(clus.Estimate()-g.GlobalClustering()) > 0.03 {
		t.Fatalf("clustering estimate %v vs %v", clus.Estimate(), g.GlobalClustering())
	}
	if math.Abs(asst.Estimate()-g.AssortativityUndirected()) > 0.08 {
		t.Fatalf("assortativity estimate %v vs %v", asst.Estimate(), g.AssortativityUndirected())
	}
	if math.Abs(avg.Estimate()-g.AverageSymDegree())/g.AverageSymDegree() > 0.05 {
		t.Fatalf("avg degree estimate %v vs %v", avg.Estimate(), g.AverageSymDegree())
	}
	if math.Abs(grp.Estimate(0)-groups.Density(0)) > 0.05 {
		t.Fatalf("group density estimate %v vs %v", grp.Estimate(0), groups.Density(0))
	}
	if dens.Estimate() <= 0 {
		t.Fatal("scalar density estimate empty")
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	dir := t.TempDir()
	g := frontier.ErdosRenyiGNM(frontier.NewRand(8), 200, 600, true)
	path := dir + "/g.fgrb"
	if err := frontier.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := frontier.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDirectedEdges() != g.NumDirectedEdges() {
		t.Fatal("round trip changed edges")
	}
}

func TestPublicAPINetworkCrawl(t *testing.T) {
	r := frontier.NewRand(9)
	g := frontier.BarabasiAlbert(r, 500, 3)
	groups := frontier.PlantGroups(r, g, 5, 100, 1.0)
	ts := httptest.NewServer(frontier.NewGraphServer("t", g, groups))
	defer ts.Close()

	c, err := frontier.DialGraph(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	sess := frontier.NewSession(c, 500, frontier.UnitCosts(), frontier.NewRand(10))
	est := frontier.NewDegreeDist(c, frontier.SymDeg)
	fs := &frontier.FrontierSampler{M: 16}
	if err := c.RunSafely(func() error { return fs.Run(sess, est.Observe) }); err != nil {
		t.Fatal(err)
	}
	if est.N() == 0 {
		t.Fatal("no samples over HTTP")
	}
}

func TestPublicAPIAnalyticModel(t *testing.T) {
	g := frontier.BarabasiAlbert(frontier.NewRand(11), 2000, 3)
	model := frontier.NewDegreeNMSEModel(g, frontier.SymDeg)
	co := model.CrossoverDegree()
	if co < int(model.AvgDegree()) {
		t.Fatalf("crossover %d below average %v", co, model.AvgDegree())
	}
	if !(frontier.PredictedEdgeNMSE(0.5, 100) < frontier.PredictedVertexNMSE(0.01, 100)) {
		t.Fatal("predicted ordering wrong")
	}
}

func TestPublicAPIDiagnostics(t *testing.T) {
	g := frontier.BarabasiAlbert(frontier.NewRand(12), 1000, 3)
	series := func(seed uint64) []float64 {
		sess := frontier.NewSession(g, 2001, frontier.UnitCosts(), frontier.NewRand(seed))
		var xs []float64
		rw := &frontier.SingleRW{}
		if err := rw.Run(sess, func(u, v int) {
			xs = append(xs, 1/float64(g.SymDegree(v)))
		}); err != nil {
			t.Fatal(err)
		}
		return xs
	}
	a, b := series(13), series(14)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	rhat, err := frontier.GelmanRubin([][]float64{a[:n], b[:n]})
	if err != nil {
		t.Fatal(err)
	}
	if rhat > 1.3 {
		t.Fatalf("R-hat on connected graph = %v", rhat)
	}
	if _, err := frontier.Geweke(a, 0.1, 0.5); err != nil {
		t.Fatal(err)
	}
	ess, err := frontier.EffectiveSampleSize(a)
	if err != nil {
		t.Fatal(err)
	}
	if ess <= 0 || ess > float64(len(a)) {
		t.Fatalf("ESS = %v out of range", ess)
	}
	rho, err := frontier.Autocorrelation(a, 3)
	if err != nil || len(rho) != 4 {
		t.Fatalf("autocorrelation: %v, %v", rho, err)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	r := frontier.NewRand(15)
	cases := []struct {
		name string
		g    *frontier.Graph
	}{
		{"ba", frontier.BarabasiAlbert(r, 300, 2)},
		{"gnm", frontier.ErdosRenyiGNM(r, 300, 900, false)},
		{"config", frontier.DirectedConfigModel(r, 300, 1.9, 2, 30)},
		{"gab", frontier.GAB(r, 150)},
		{"sbm", frontier.StochasticBlockModel(r, 300, 3, 0.1, 0.01)},
		{"pp", frontier.PlantedPartition(r, 300, []float64{0.05, 0.2}, 0.01)},
		{"ws", frontier.WattsStrogatz(r, 300, 3, 0.1)},
	}
	for _, c := range cases {
		if c.g.NumVertices() == 0 || c.g.NumDirectedEdges() == 0 {
			t.Fatalf("%s: empty graph", c.name)
		}
	}
	for _, name := range []string{"flickr", "lj", "youtube", "internet-rlt", "hepth", "gab"} {
		ds, err := frontier.DatasetByName(name, frontier.NewRand(16), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Graph.NumVertices() == 0 {
			t.Fatalf("%s: empty dataset", name)
		}
	}
	if _, err := frontier.DatasetByName("bogus", r, 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestPublicAPISummaryAndStats(t *testing.T) {
	g := frontier.GAB(frontier.NewRand(17), 200)
	s := g.Summarize("gab")
	if !s.Connected || s.NumVertices != 400 {
		t.Fatalf("summary: %+v", s)
	}
	se := frontier.NewScalarError(1.0)
	se.Add(0.9)
	se.Add(1.1)
	if math.Abs(se.NMSE()-0.1) > 1e-12 {
		t.Fatalf("NMSE = %v", se.NMSE())
	}
	ve := frontier.NewVectorError([]float64{1})
	ve.Add([]float64{2})
	if ve.NMSEAt(0) != 1 {
		t.Fatal("vector error wrong")
	}
	var w frontier.Welford
	w.Add(1)
	w.Add(3)
	if w.Mean() != 2 {
		t.Fatal("welford wrong")
	}
}

// TestPublicAPIJobService round-trips the sampling-job service through
// the facade: serve a graph with a job manager mounted, submit a remote
// job, poll it to completion, and check the estimate matches an
// in-process run with the same seed.
func TestPublicAPIJobService(t *testing.T) {
	g := frontier.BarabasiAlbert(frontier.NewRand(30), 2000, 3)
	mgr, err := frontier.NewJobManager(g, frontier.WithJobWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	ts := httptest.NewServer(frontier.NewGraphServer("jobs", g, nil, frontier.WithServerJobs(mgr)))
	defer ts.Close()

	c, err := frontier.DialGraph(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 {
		t.Fatalf("health = %+v", h)
	}

	spec := frontier.JobSpec{Method: "fs", M: 32, Budget: 4000, Seed: 123, Estimate: "avgdegree"}
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, st.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != frontier.JobDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.Estimate == nil {
		t.Fatal("no estimate on done job")
	}

	// The same run in-process through the facade estimator must agree.
	sess := frontier.NewSession(g, spec.Budget, frontier.UnitCosts(), frontier.NewRand(spec.Seed))
	est := frontier.NewAvgDegree(g)
	fs := &frontier.FrontierSampler{M: spec.M}
	if err := fs.Run(sess, est.Observe); err != nil {
		t.Fatal(err)
	}
	if got, want := *final.Estimate, est.Estimate(); got != want {
		t.Fatalf("remote job estimate %v, in-process %v", got, want)
	}
	if final.Edges != sess.Stats().Steps {
		t.Fatalf("remote job sampled %d edges, in-process %d", final.Edges, sess.Stats().Steps)
	}

	// Resumable is part of the public API: a sampler snapshot taken
	// mid-run restores into a fresh value.
	var r frontier.Resumable = &frontier.FrontierSampler{M: 4}
	sess2 := frontier.NewSession(g, 100, frontier.UnitCosts(), frontier.NewRand(1))
	if err := r.Run(sess2, func(u, v int) {}); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := &frontier.FrontierSampler{M: 4}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPISweepService drives the paper-figure sweep service
// through the facade: catalog-backed manager, remote submit, SSE
// follow, artifact download.
func TestPublicAPISweepService(t *testing.T) {
	g := frontier.BarabasiAlbert(frontier.NewRand(31), 600, 3)
	cat := frontier.NewGraphCatalog()
	if err := cat.Add("ba", g, nil); err != nil {
		t.Fatal(err)
	}
	mgr, err := frontier.NewJobManager(g, frontier.WithJobWorkers(2), frontier.WithJobResolver(cat))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := frontier.NewSweepManager(mgr, cat,
		frontier.WithSweepDir(t.TempDir()),
		frontier.WithSweepArtifactDir(t.TempDir()),
		frontier.WithSweepParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	defer sm.Stop() // sweeps freeze before the job manager checkpoints

	if ids := frontier.SweepArtifacts(); len(ids) == 0 {
		t.Fatal("no sweep-runnable artifacts")
	}

	ts := httptest.NewServer(frontier.NewGraphServer("ba", g, nil,
		frontier.WithServerJobs(mgr), frontier.WithServerSweeps(sm)))
	defer ts.Close()
	c, err := frontier.DialGraph(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	st, err := c.SubmitSweep(ctx, frontier.SweepSpec{Artifact: "fig1", Runs: 2, OnError: frontier.SweepContinue})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.FollowSweep(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != frontier.SweepDone {
		t.Fatalf("sweep ended %s: %s", final.State, final.Error)
	}
	if n := final.NodeCounts[frontier.SweepNodeDone]; n != len(final.Nodes) {
		t.Fatalf("%d/%d nodes done", n, len(final.Nodes))
	}
	if len(final.Artifacts) == 0 {
		t.Fatal("no artifacts on done sweep")
	}
	data, err := c.SweepArtifact(ctx, st.ID, final.Artifacts[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty artifact")
	}
}

// TestPublicAPILiveEstimation drives the live estimation subsystem
// through the facade: registry, runtime, adaptive stop, and the
// job-spec stop rule.
func TestPublicAPILiveEstimation(t *testing.T) {
	g := frontier.BarabasiAlbert(frontier.NewRand(70), 2500, 3)

	// Registry enumerates the built-ins.
	reg := frontier.DefaultEstimators()
	if len(reg.Names()) < 5 {
		t.Fatalf("default registry names = %v", reg.Names())
	}
	est, err := reg.New("avgdegree", g)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := frontier.ParseStopRule("ci_halfwidth<=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if rule.Metric != frontier.StopMetricCIHalfWidth {
		t.Fatalf("rule metric = %v", rule.Metric)
	}
	rt := frontier.NewLiveRuntime(est, frontier.NewConvergenceMonitor(frontier.MonitorConfig{}), rule)

	fs := &frontier.FrontierSampler{M: 16}
	var tracker frontier.WalkerTracker = fs
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := frontier.NewSessionContext(ctx, g, 80000, frontier.UnitCosts(), frontier.NewRand(71))
	err = fs.Run(sess, func(u, v int) {
		if rep := rt.Observe(tracker.LastWalker(), u, v); rep != nil && rep.Converged {
			cancel()
		}
	})
	conv, reason := rt.Converged()
	if !conv {
		t.Fatalf("runtime never converged (run err %v)", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("adaptive stop should cancel the run, got %v", err)
	}
	rep := rt.Report()
	if rep.Value == nil || rep.CI == nil || rep.CI.HalfWidth > 0.25 {
		t.Fatalf("report = %+v (reason %s)", rep, reason)
	}
	if sess.Stats().Spent >= 80000 {
		t.Fatal("adaptive stop spent the whole budget")
	}

	// The job service honors the same rule via Spec.StopRule, and the
	// manager's estimate validation enumerates the registry.
	mgr, err := frontier.NewJobManager(g, frontier.WithJobWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	if _, err := mgr.Submit(frontier.JobSpec{Method: "fs", Budget: 10, Estimate: "nope"}); err == nil {
		t.Fatal("unknown estimate must be rejected")
	}
	j, err := mgr.Submit(frontier.JobSpec{
		Method: "fs", M: 16, Budget: 80000, Seed: 72,
		Estimate: "avgdegree", StopRule: "ci_halfwidth<=0.25",
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var st frontier.JobStatus
	for {
		st = j.Status()
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != frontier.JobDone || st.StopReason == frontier.JobStopBudget {
		t.Fatalf("adaptive job ended %s with stop reason %q", st.State, st.StopReason)
	}
	if st.Spent >= 80000 {
		t.Fatal("adaptive job spent its whole budget")
	}
	if _, _, ok := j.EstimateReport(); !ok {
		t.Fatal("done adaptive job has no estimate report")
	}
}
