// Benchmarks regenerating every table and figure of the paper plus the
// ablation studies called out in DESIGN.md.
//
// Each BenchmarkTableN / BenchmarkFigN runs the corresponding experiment
// end to end (dataset generation is cached across iterations) at the
// quick configuration; run `cmd/fsexp -exp all` for the full-scale
// numbers. The Ablation benchmarks measure
// the design choices: Fenwick-tree vs linear walker selection, FS vs
// distributed FS, alias vs rejection seeding, CSR vs map adjacency, and
// the effect of the FS dimension m on estimation error.
package frontier_test

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"

	"frontier"
	"frontier/internal/experiments"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// benchGraph builds the shared benchmark graph once.
var benchGraphCache *frontier.Graph

func benchGraph(b *testing.B) *frontier.Graph {
	b.Helper()
	if benchGraphCache == nil {
		benchGraphCache = frontier.BarabasiAlbert(frontier.NewRand(99), 50000, 5)
	}
	return benchGraphCache
}

// BenchmarkAblationWalkerSelection compares the O(log m) Fenwick-tree
// walker selection against the O(m) linear scan inside the FS step loop.
func BenchmarkAblationWalkerSelection(b *testing.B) {
	g := benchGraph(b)
	for _, m := range []int{10, 100, 1000} {
		for _, sel := range []frontier.Selection{frontier.SelectFenwick, frontier.SelectLinear} {
			name := fmt.Sprintf("m=%d/%s", m, sel)
			b.Run(name, func(b *testing.B) {
				fs := &frontier.FrontierSampler{M: m, Selection: sel}
				sess := frontier.NewSession(g, float64(b.N+m), frontier.UnitCosts(), frontier.NewRand(1))
				b.ResetTimer()
				if err := fs.Run(sess, func(u, v int) {}); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkAblationDFS compares the centrally coordinated FS step loop
// against the event-clock distributed variant at equal walker counts.
func BenchmarkAblationDFS(b *testing.B) {
	g := benchGraph(b)
	const m = 100
	// Seed both variants from the same fixed vertices: the DFS budget is
	// continuous time, so uniform seeding (which charges budget units)
	// would conflate the two clocks.
	rng := frontier.NewRand(42)
	seeds := make([]int, m)
	for i := range seeds {
		seeds[i] = rng.Intn(g.NumVertices())
	}
	seeder := frontier.FixedSeeder{Vertices: seeds}
	b.Run("FS", func(b *testing.B) {
		fs := &frontier.FrontierSampler{M: m, Seeder: seeder}
		sess := frontier.NewSession(g, float64(b.N), frontier.UnitCosts(), frontier.NewRand(2))
		b.ResetTimer()
		if err := fs.Run(sess, func(u, v int) {}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("DFS", func(b *testing.B) {
		dfs := &frontier.DistributedFS{M: m, Seeder: seeder}
		// A time window sized so roughly b.N transition events occur
		// (each walker fires at expected rate ≈ average degree).
		window := float64(b.N) / (float64(m) * g.AverageSymDegree())
		sess := frontier.NewSession(g, window+1, frontier.UnitCosts(), frontier.NewRand(3))
		b.ResetTimer()
		if err := dfs.Run(sess, func(u, v int) {}); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkAblationAlias compares alias-method degree-proportional
// seeding against rejection sampling (propose uniform vertex, accept
// with probability deg/degmax).
func BenchmarkAblationAlias(b *testing.B) {
	g := benchGraph(b)
	b.Run("alias", func(b *testing.B) {
		seeder, err := frontier.NewStationarySeeder(g)
		if err != nil {
			b.Fatal(err)
		}
		sess := frontier.NewSession(g, 1e18, frontier.UnitCosts(), frontier.NewRand(4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := seeder.Seed(sess, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rejection", func(b *testing.B) {
		maxDeg, _ := g.MaxSymDegree()
		rng := frontier.NewRand(5)
		n := g.NumVertices()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				v := rng.Intn(n)
				if rng.Float64()*float64(maxDeg) < float64(g.SymDegree(v)) {
					break
				}
			}
		}
	})
}

// mapAdjacency is a map-based crawl.Source used to quantify what the CSR
// layout buys the walk loop.
type mapAdjacency struct {
	n   int
	adj map[int][]int
}

func (m *mapAdjacency) NumVertices() int         { return m.n }
func (m *mapAdjacency) SymDegree(v int) int      { return len(m.adj[v]) }
func (m *mapAdjacency) SymNeighbor(v, i int) int { return m.adj[v][i] }

// BenchmarkAblationAdjacency compares random-walk throughput on the CSR
// graph against a map-of-slices adjacency.
func BenchmarkAblationAdjacency(b *testing.B) {
	g := benchGraph(b)
	b.Run("csr", func(b *testing.B) {
		sess := frontier.NewSession(g, float64(b.N+1), frontier.UnitCosts(), frontier.NewRand(6))
		rw := &frontier.SingleRW{}
		b.ResetTimer()
		if err := rw.Run(sess, func(u, v int) {}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("map", func(b *testing.B) {
		ma := &mapAdjacency{n: g.NumVertices(), adj: make(map[int][]int, g.NumVertices())}
		for v := 0; v < g.NumVertices(); v++ {
			nb := make([]int, g.SymDegree(v))
			for i := range nb {
				nb[i] = g.SymNeighbor(v, i)
			}
			ma.adj[v] = nb
		}
		sess := frontier.NewSession(ma, float64(b.N+1), frontier.UnitCosts(), frontier.NewRand(7))
		rw := &frontier.SingleRW{}
		b.ResetTimer()
		if err := rw.Run(sess, func(u, v int) {}); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkRemoteCrawl measures a frontier crawl of a remote graph
// through the HTTP stack with injected per-request latency (the paper's
// access regime: every query is a slow OSN API round trip). It compares
// the per-vertex baseline — batch size 1, no prefetch advice — against
// the batched client with frontier prefetching, and reports the HTTP
// round trips per crawl alongside time/op. The sampled edge sequence is
// identical in both modes (prefetching never touches the RNG); only the
// network schedule changes.
func BenchmarkRemoteCrawl(b *testing.B) {
	g := frontier.BarabasiAlbert(frontier.NewRand(33), 3000, 3)
	const latency = 2 * time.Millisecond
	for _, bc := range []struct {
		name    string
		batched bool
	}{
		{"pervertex", false},
		{"batched", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			srv := httptest.NewServer(frontier.NewGraphServer("bench", g, nil,
				frontier.WithServerLatency(latency)))
			defer srv.Close()
			var roundtrips int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var opts []frontier.GraphClientOption
				if !bc.batched {
					opts = append(opts, frontier.WithBatchSize(1))
				}
				c, err := frontier.DialGraph(srv.URL, opts...)
				if err != nil {
					b.Fatal(err)
				}
				fs := &frontier.FrontierSampler{M: 50}
				if bc.batched {
					fs.PrefetchEvery = 8
				}
				sess := frontier.NewSession(c, 400, frontier.UnitCosts(), frontier.NewRand(77))
				if err := c.RunSafely(func() error {
					return fs.Run(sess, func(u, v int) {})
				}); err != nil {
					b.Fatal(err)
				}
				roundtrips += c.Roundtrips()
			}
			b.ReportMetric(float64(roundtrips)/float64(b.N), "roundtrips")
		})
	}
}

// BenchmarkMethodObservations measures the observation throughput of
// every job-service sampling method on the shared in-memory graph —
// the sampler-runtime hot path the CI benchmark-regression gate
// watches — on both emission surfaces: the classic per-observation
// callback and the slab-batched hot path (the "/batch" variants),
// which iterates the CSR adjacency by index and recycles fixed
// 512-observation slabs through a pool. Both must report 0 allocs/op
// under -benchmem; the batch gap is the per-observation dispatch cost
// the slab loop eliminates. dfs is excluded: its budget is continuous
// time, so its event count does not scale with b.N like the others.
func BenchmarkMethodObservations(b *testing.B) {
	g := benchGraph(b)
	for _, name := range []string{"fs", "single", "multiple", "mhrw", "rv", "re", "jump"} {
		method, ok := frontier.DefaultJobMethods().Get(name)
		if !ok {
			b.Fatalf("method %s not registered", name)
		}
		newRun := func(b *testing.B) (frontier.ObservationSampler, *frontier.Session) {
			s := method.Build(frontier.JobSpec{Method: name, M: 16, JumpProb: 0.1})
			// Budget 2·b.N+64 covers seeding and the 2-unit edge-query
			// cost of re; the work still scales linearly with b.N.
			sess := frontier.NewSession(g, 2*float64(b.N)+64, frontier.UnitCosts(), frontier.NewRand(10))
			return s, sess
		}
		b.Run(name, func(b *testing.B) {
			s, sess := newRun(b)
			b.ResetTimer()
			if err := s.RunObs(sess, func(o frontier.Observation) {}); err != nil {
				b.Fatal(err)
			}
		})
		b.Run(name+"/batch", func(b *testing.B) {
			s, sess := newRun(b)
			b.ResetTimer()
			if err := s.RunObsBatch(sess, func(batch []frontier.Observation) {}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkObsBatchLogging proves the observability layer stays off
// the batched observation hot path: the slab callback carries the same
// guarded disabled-level slog call the job manager's emitBatch uses (a
// hoisted Enabled check in front of LogAttrs), and the run must still
// report 0 allocs/op — the CI benchmark gate enforces it. An unguarded
// call, or variadic ...any logging, would allocate per slab.
func BenchmarkObsBatchLogging(b *testing.B) {
	g := benchGraph(b)
	logger, err := frontier.NewLogger(io.Discard, slog.LevelWarn, "json")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	method, ok := frontier.DefaultJobMethods().Get("fs")
	if !ok {
		b.Fatal("method fs not registered")
	}
	s := method.Build(frontier.JobSpec{Method: "fs", M: 16})
	sess := frontier.NewSession(g, 2*float64(b.N)+64, frontier.UnitCosts(), frontier.NewRand(10))
	var slabs int64
	b.ResetTimer()
	err = s.RunObsBatch(sess, func(batch []frontier.Observation) {
		slabs++
		if logger.Enabled(ctx, slog.LevelDebug) {
			logger.LogAttrs(ctx, slog.LevelDebug, "slab",
				slog.Int("n", len(batch)), slog.Int64("slabs", slabs))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchSegmentGraph writes the shared benchmark graph to an .fcsr
// segment once, memory-maps it, and returns the mapped graph plus the
// segment path. The mapping stays open for the life of the benchmark
// process; the files live in a fresh OS temp directory.
var (
	benchSegPathCache string
	benchSegmentCache *frontier.GraphSegment
)

func benchSegmentGraph(b *testing.B) (*frontier.Graph, string) {
	b.Helper()
	if benchSegmentCache == nil {
		dir, err := os.MkdirTemp("", "fcsr-bench")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "bench.fcsr")
		if err := frontier.SaveGraph(path, benchGraph(b)); err != nil {
			b.Fatal(err)
		}
		seg, err := frontier.OpenGraphSegment(path)
		if err != nil {
			b.Fatal(err)
		}
		benchSegPathCache, benchSegmentCache = path, seg
	}
	return benchSegmentCache.Graph, benchSegPathCache
}

// BenchmarkGraphLoad compares the three ways to bring a hosted graph
// into a process: the zero-copy mmap open of an .fcsr segment, the
// fully validating heap parse of the same segment, and the text
// parser. The mmap open touches only the 256-byte header and the
// O(|V|) offset arrays — it must stay an order of magnitude ahead of
// the text parse, which is the acceptance bar for the segment format.
func BenchmarkGraphLoad(b *testing.B) {
	g := benchGraph(b)
	_, fcsrPath := benchSegmentGraph(b)
	textPath := filepath.Join(filepath.Dir(fcsrPath), "bench.fg")
	if _, err := os.Stat(textPath); err != nil {
		if err := frontier.SaveGraph(textPath, g); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("fcsr-mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seg, err := frontier.OpenGraphSegment(fcsrPath)
			if err != nil {
				b.Fatal(err)
			}
			if seg.Graph.NumVertices() != g.NumVertices() {
				b.Fatal("wrong graph")
			}
			if err := seg.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fcsr-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lg, err := frontier.LoadGraph(fcsrPath)
			if err != nil {
				b.Fatal(err)
			}
			if lg.NumVertices() != g.NumVertices() {
				b.Fatal("wrong graph")
			}
		}
	})
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lg, err := frontier.LoadGraph(textPath)
			if err != nil {
				b.Fatal(err)
			}
			if lg.NumVertices() != g.NumVertices() {
				b.Fatal("wrong graph")
			}
		}
	})
}

// BenchmarkCrawlMmap drives the slab-batched sampling hot loop over
// the memory-mapped segment instead of the heap graph. The
// devirtualized CSR loop reads the same little-endian arrays either
// way, so per-step cost must match BenchmarkMethodObservations'
// batched variants within noise and stay at 0 allocs/op — a gap here
// means the mapped path fell off the concrete-type fast path.
func BenchmarkCrawlMmap(b *testing.B) {
	mg, _ := benchSegmentGraph(b)
	for _, name := range []string{"fs", "mhrw"} {
		method, ok := frontier.DefaultJobMethods().Get(name)
		if !ok {
			b.Fatalf("method %s not registered", name)
		}
		b.Run(name, func(b *testing.B) {
			s := method.Build(frontier.JobSpec{Method: name, M: 16, JumpProb: 0.1})
			sess := frontier.NewSession(mg, 2*float64(b.N)+64, frontier.UnitCosts(), frontier.NewRand(10))
			b.ResetTimer()
			if err := s.RunObsBatch(sess, func(batch []frontier.Observation) {}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// pipelineCPUProfile captures a CPU profile of BenchmarkPipeline — the
// whole sampler → estimator → monitor pipeline — so CI can upload it
// as an artifact:
//
//	go test -run - -bench BenchmarkPipeline -benchtime=200000x \
//	    -pipeline.cpuprofile pipeline.pprof .
var pipelineCPUProfile = flag.String("pipeline.cpuprofile", "", "write a CPU profile of BenchmarkPipeline to this file")

// BenchmarkPipeline measures the end-to-end estimation hot path: a
// batch-driven sampler feeding a live estimator and convergence
// monitor one slab at a time, exactly as the job service drives
// UsesWalkers-free methods. The cost per observation is sampler step +
// kernel update + monitor update (+ the amortized every-512th
// stop-rule evaluation).
func BenchmarkPipeline(b *testing.B) {
	g := benchGraph(b)
	if *pipelineCPUProfile != "" {
		f, err := os.Create(*pipelineCPUProfile)
		if err != nil {
			b.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			b.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	for _, name := range []string{"single", "mhrw", "jump"} {
		b.Run(name, func(b *testing.B) {
			method, ok := frontier.DefaultJobMethods().Get(name)
			if !ok {
				b.Fatalf("method %s not registered", name)
			}
			est, err := frontier.DefaultEstimators().New("avgdegree", g)
			if err != nil {
				b.Fatal(err)
			}
			rule, err := frontier.ParseStopRule("ess>=1e18") // never fires; keeps rule evaluation live
			if err != nil {
				b.Fatal(err)
			}
			rt := frontier.NewLiveRuntime(est, frontier.NewConvergenceMonitor(frontier.MonitorConfig{}), rule)
			s := method.Build(frontier.JobSpec{Method: name, JumpProb: 0.1})
			sess := frontier.NewSession(g, float64(b.N)+64, frontier.UnitCosts(), frontier.NewRand(11))
			b.ResetTimer()
			if err := s.RunObsBatch(sess, func(batch []frontier.Observation) {
				rt.ObserveBatch(0, batch)
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationDimension measures how the FS dimension m affects
// estimation error at a fixed budget: it reports the geometric-mean
// CNMSE of the degree CCDF (lower is better) as "cnmse" alongside the
// usual time/op. m = 1 degrades to a single walker.
func BenchmarkAblationDimension(b *testing.B) {
	ds, err := frontier.DatasetByName("flickr", frontier.NewRand(8), 0.2)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Graph
	truth := frontier.CCDF(g.DegreeDistribution(frontier.InDeg))
	budget := float64(g.NumVertices()) / 10
	for _, m := range []int{1, 10, 100, 400} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			rng := frontier.NewRand(9)
			ve := frontier.NewVectorError(truth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est := frontier.NewDegreeDist(g, frontier.InDeg)
				sess := frontier.NewSession(g, budget, frontier.UnitCosts(), frontier.NewRand(rng.Uint64()))
				fs := &frontier.FrontierSampler{M: m}
				if err := fs.Run(sess, est.Observe); err != nil {
					b.Fatal(err)
				}
				ve.Add(est.CCDF())
			}
			var gm, count float64
			for i := 0; i < ve.Len(); i++ {
				v := ve.NMSEAt(i)
				if v > 0 && !math.IsNaN(v) {
					gm += math.Log(v)
					count++
				}
			}
			if count > 0 {
				b.ReportMetric(math.Exp(gm/count), "cnmse")
			}
		})
	}
}
