// Package frontier is a Go implementation of Frontier Sampling — the
// m-dimensional random walk of Ribeiro & Towsley, "Estimating and
// Sampling Graphs with Multidimensional Random Walks" (IMC 2010) — and
// of the full apparatus around it: baseline samplers, asymptotically
// unbiased estimators, synthetic graph generators, a query-cost crawl
// model, graph I/O, an HTTP graph-crawling stack, and an experiment
// harness that regenerates every table and figure of the paper.
//
// This file is the public facade: it re-exports the library's primary
// types and constructors so that applications can depend on the single
// import "frontier". The implementation lives in the internal packages
// (internal/core, internal/graph, internal/estimate, ...), one per
// subsystem; see DESIGN.md for the system inventory.
//
// # Quick start
//
//	g := frontier.BarabasiAlbert(frontier.NewRand(1), 10000, 3)
//	sess := frontier.NewSession(g, 1000, frontier.UnitCosts(), frontier.NewRand(2))
//	est := frontier.NewDegreeDist(g, frontier.SymDeg)
//	fs := &frontier.FrontierSampler{M: 64}
//	if err := fs.Run(sess, est.Observe); err != nil { ... }
//	theta := est.Theta() // estimated degree distribution
//
// See examples/ for complete programs.
package frontier

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"time"

	"frontier/internal/core"
	"frontier/internal/crawl"
	"frontier/internal/estimate"
	"frontier/internal/gen"
	"frontier/internal/graph"
	"frontier/internal/graphio"
	"frontier/internal/jobs"
	"frontier/internal/live"
	"frontier/internal/netgraph"
	"frontier/internal/obs"
	"frontier/internal/stats"
	"frontier/internal/sweep"
	"frontier/internal/walkstats"
	"frontier/internal/xrand"
)

// Graph substrate (internal/graph).
type (
	// Graph is an immutable labeled directed graph plus its symmetric
	// counterpart; all walks run on the symmetric view.
	Graph = graph.Graph
	// Builder accumulates directed edges and produces a Graph.
	Builder = graph.Builder
	// Edge is a directed edge.
	Edge = graph.Edge
	// GroupLabels assigns special-interest group labels to vertices.
	GroupLabels = graph.GroupLabels
	// DegreeKind selects in-, out- or symmetric degree.
	DegreeKind = graph.DegreeKind
	// Summary is a Table-1 style dataset description.
	Summary = graph.Summary
)

// Degree kinds.
const (
	InDeg  = graph.InDeg
	OutDeg = graph.OutDeg
	SymDeg = graph.SymDeg
)

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n vertices from a directed edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// CCDF converts a density into its complementary CDF.
func CCDF(theta []float64) []float64 { return graph.CCDF(theta) }

// Randomness (internal/xrand).
type (
	// Rand is the deterministic PRNG used throughout the library.
	Rand = xrand.Rand
)

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// Crawl model (internal/crawl).
type (
	// Session mediates budgeted graph access for one sampling run.
	Session = crawl.Session
	// SessionCheckpoint is a session's serializable mid-run state
	// (budget, cost model, stats, RNG); see ResumeSession.
	SessionCheckpoint = crawl.SessionCheckpoint
	// CostModel prices each query type (steps, vertex and edge queries,
	// hit ratios).
	CostModel = crawl.CostModel
	// Source is the minimal neighborhood-query interface walks need.
	Source = crawl.Source
	// BatchSource is the optional batched-prefetch extension of Source
	// (implemented by GraphClient; a no-op on in-memory graphs).
	BatchSource = crawl.BatchSource
	// IndexedSource is the optional contiguous-adjacency (CSR) extension
	// of Source that the allocation-free batched sampler loops walk
	// (implemented by Graph).
	IndexedSource = crawl.IndexedSource
	// CrawlStats counts what a session actually did.
	CrawlStats = crawl.Stats
)

// ErrBudgetExhausted is returned when an operation would exceed the
// session budget.
var ErrBudgetExhausted = crawl.ErrBudgetExhausted

// UnitCosts returns the paper's default cost accounting.
func UnitCosts() CostModel { return crawl.UnitCosts() }

// NewSession creates a session over src with the given budget and cost
// model.
func NewSession(src Source, budget float64, model CostModel, rng *Rand) *Session {
	return crawl.NewSession(src, budget, model, rng)
}

// NewSessionContext creates a session that cancels cooperatively with
// ctx: every budget charge checks it, so a running sampler unwinds at
// its next query.
func NewSessionContext(ctx context.Context, src Source, budget float64, model CostModel, rng *Rand) *Session {
	return crawl.NewSessionContext(ctx, src, budget, model, rng)
}

// ResumeSession rebuilds a session from a checkpoint, continuing
// byte-identically where the checkpointed session stopped.
func ResumeSession(ctx context.Context, src Source, cp SessionCheckpoint) (*Session, error) {
	return crawl.ResumeSession(ctx, src, cp)
}

// Samplers (internal/core — the paper's contribution and baselines).
type (
	// FrontierSampler is Algorithm 1: the m-dimensional random walk.
	FrontierSampler = core.FrontierSampler
	// DistributedFS is the coordination-free variant (Theorem 5.5).
	DistributedFS = core.DistributedFS
	// SingleRW is the classic single random walker.
	SingleRW = core.SingleRW
	// MultipleRW runs m independent walkers splitting the budget.
	MultipleRW = core.MultipleRW
	// ParallelDFS runs the distributed variant with one goroutine per
	// walker — zero coordination, as Section 5.3 promises.
	ParallelDFS = core.ParallelDFS
	// BurnIn wraps a sampler and discards its first W samples.
	BurnIn = core.BurnIn
	// MetropolisRW samples vertices uniformly (comparator).
	MetropolisRW = core.MetropolisRW
	// RandomVertexSampler draws uniform vertices with replacement.
	RandomVertexSampler = core.RandomVertexSampler
	// RandomEdgeSampler draws uniform edges with replacement.
	RandomEdgeSampler = core.RandomEdgeSampler
	// JumpRW is a single random walk with uniform restarts — the
	// paper's hybrid between RW and random vertex sampling (restart
	// probability w/(w+deg(v)), stationary law ∝ deg(v)+w).
	JumpRW = core.JumpRW
	// EdgeSampler is the interface all edge-emitting samplers satisfy.
	EdgeSampler = core.EdgeSampler
	// Resumable is an EdgeSampler whose run can be snapshotted at a step
	// boundary and continued byte-identically (FrontierSampler,
	// DistributedFS, SingleRW and MultipleRW implement it).
	Resumable = core.Resumable
	// Observation is one weighted sample: an edge or vertex observation
	// with the importance weight that maps it back to the uniform-vertex
	// measure — the unified currency of the sampler runtime.
	Observation = core.Observation
	// ObservationFunc receives weighted observations.
	ObservationFunc = core.ObsFunc
	// BatchObservationFunc receives weighted observations in pooled
	// slabs of up to SlabSize — the allocation-free hot-path surface.
	// Consumers must not retain a slab (or any subslice) past the
	// callback; it is recycled the moment the callback returns.
	BatchObservationFunc = core.BatchObsFunc
	// Selection names a Frontier Sampling walker-selection algorithm
	// (SelectAuto resolves linear vs Fenwick from M at the measured
	// crossover).
	Selection = core.Selection
	// ObservationSampler is the weighted-observation sampling process
	// every job method implements: a resumable run emitting
	// Observations (all eight built-in methods implement it).
	ObservationSampler = core.ObservationSampler
	// WalkerTracker is implemented by samplers that report which walker
	// emitted the most recent observation — what feeds the live
	// convergence monitor's per-walker chains (all built-in samplers
	// implement it).
	WalkerTracker = core.WalkerTracker
	// VertexSampler is the interface vertex-emitting samplers satisfy.
	VertexSampler = core.VertexSampler
	// Seeder chooses initial walker positions.
	Seeder = core.Seeder
	// UniformSeeder seeds walkers at uniformly random vertices.
	UniformSeeder = core.UniformSeeder
	// StationarySeeder seeds walkers proportionally to degree.
	StationarySeeder = core.StationarySeeder
	// FixedSeeder seeds walkers at predetermined vertices.
	FixedSeeder = core.FixedSeeder
	// EdgeFunc receives sampled edges.
	EdgeFunc = core.EdgeFunc
	// VertexFunc receives sampled vertices.
	VertexFunc = core.VertexFunc
)

// Walker-selection algorithms for FrontierSampler.Selection.
const (
	// SelectAuto resolves adaptively from M: linear scan up to
	// LinearSelectionMaxM walkers, Fenwick tree above.
	SelectAuto = core.SelectAuto
	// SelectFenwick pins the O(log M) Fenwick-tree selection.
	SelectFenwick = core.SelectFenwick
	// SelectLinear pins the O(M) linear-scan selection.
	SelectLinear = core.SelectLinear
)

// LinearSelectionMaxM is the largest frontier dimension for which
// SelectAuto resolves to the linear scan (the crossover measured by
// BenchmarkAblationWalkerSelection).
const LinearSelectionMaxM = core.LinearSelectionMaxM

// SlabSize is the capacity of the pooled observation slabs batched
// runs emit through (see BatchObservationFunc).
const SlabSize = core.SlabSize

// EdgeObservation builds the degree-proportional edge observation for
// a sampled edge (u,v): Weight 1/SymDegree(v), the stationary-walk
// importance weight of equation (7).
func EdgeObservation(src Source, u, v int) Observation {
	return core.EdgeObservation(src, u, v)
}

// NewStationarySeeder precomputes degree-proportional seeding for src.
func NewStationarySeeder(src Source) (*StationarySeeder, error) {
	return core.NewStationarySeeder(src)
}

// Estimators (internal/estimate).
type (
	// DegreeDist estimates degree distributions from walk samples.
	DegreeDist = estimate.DegreeDist
	// PlainDegreeDist estimates them from uniform vertex samples.
	PlainDegreeDist = estimate.PlainDegreeDist
	// GroupDensity estimates group densities from walk samples.
	GroupDensity = estimate.GroupDensity
	// PlainGroupDensity estimates them from uniform vertex samples.
	PlainGroupDensity = estimate.PlainGroupDensity
	// EdgeDensity estimates edge-label densities (equation (5)).
	EdgeDensity = estimate.EdgeDensity
	// Assortativity estimates the assortative mixing coefficient.
	Assortativity = estimate.Assortativity
	// Clustering estimates the global clustering coefficient.
	Clustering = estimate.Clustering
	// ScalarDensity estimates the fraction of vertices satisfying a
	// predicate.
	ScalarDensity = estimate.ScalarDensity
	// AvgDegree estimates the average degree.
	AvgDegree = estimate.AvgDegree
	// WeightedAvgDegree estimates the average degree from importance-
	// weighted vertex observations (Σ w·deg / Σ w).
	WeightedAvgDegree = estimate.WeightedAvgDegree
	// WeightedDegreeDist estimates the degree distribution from
	// importance-weighted vertex observations.
	WeightedDegreeDist = estimate.WeightedDegreeDist
	// WeightedGroupDensity estimates group densities from importance-
	// weighted vertex observations.
	WeightedGroupDensity = estimate.WeightedGroupDensity
	// View provides the vertex metadata estimators need.
	View = estimate.View
	// EdgeView adds the edge-level queries some estimators need.
	EdgeView = estimate.EdgeView
)

// NewDegreeDist creates a walk-sample degree-distribution estimator.
func NewDegreeDist(view View, kind DegreeKind) *DegreeDist {
	return estimate.NewDegreeDist(view, kind)
}

// NewPlainDegreeDist creates the vertex-sample variant.
func NewPlainDegreeDist(view View, kind DegreeKind) *PlainDegreeDist {
	return estimate.NewPlainDegreeDist(view, kind)
}

// NewGroupDensity creates a walk-sample group-density estimator.
func NewGroupDensity(view View, labels *GroupLabels) *GroupDensity {
	return estimate.NewGroupDensity(view, labels)
}

// NewPlainGroupDensity creates the vertex-sample variant.
func NewPlainGroupDensity(labels *GroupLabels) *PlainGroupDensity {
	return estimate.NewPlainGroupDensity(labels)
}

// NewEdgeDensity creates an edge-label density estimator.
func NewEdgeDensity(numLabels int, label func(u, v int) (int, bool)) *EdgeDensity {
	return estimate.NewEdgeDensity(numLabels, label)
}

// NewAssortativity creates an assortative-mixing estimator.
func NewAssortativity(view EdgeView, directed bool) *Assortativity {
	return estimate.NewAssortativity(view, directed)
}

// NewClustering creates a global clustering coefficient estimator.
func NewClustering(view EdgeView) *Clustering {
	return estimate.NewClustering(view)
}

// NewScalarDensity creates a predicate-density estimator.
func NewScalarDensity(view View, pred func(v int) bool) *ScalarDensity {
	return estimate.NewScalarDensity(view, pred)
}

// NewAvgDegree creates an average-degree estimator.
func NewAvgDegree(view View) *AvgDegree {
	return estimate.NewAvgDegree(view)
}

// NewWeightedAvgDegree creates an importance-weighted average-degree
// estimator.
func NewWeightedAvgDegree(view View) *WeightedAvgDegree {
	return estimate.NewWeightedAvgDegree(view)
}

// NewWeightedDegreeDist creates an importance-weighted degree-
// distribution estimator.
func NewWeightedDegreeDist(view View, kind DegreeKind) *WeightedDegreeDist {
	return estimate.NewWeightedDegreeDist(view, kind)
}

// NewWeightedGroupDensity creates an importance-weighted group-density
// estimator.
func NewWeightedGroupDensity(labels *GroupLabels) *WeightedGroupDensity {
	return estimate.NewWeightedGroupDensity(labels)
}

// Generators (internal/gen).
type (
	// Dataset bundles a named graph with optional group labels.
	Dataset = gen.Dataset
	// Scale multiplies dataset sizes.
	Scale = gen.Scale
)

// BarabasiAlbert generates an undirected preferential-attachment graph.
func BarabasiAlbert(r *Rand, n, m int) *Graph { return gen.BarabasiAlbert(r, n, m) }

// ErdosRenyiGNM generates a uniform random graph with n vertices and m
// edges.
func ErdosRenyiGNM(r *Rand, n, m int, directed bool) *Graph {
	return gen.ErdosRenyiGNM(r, n, m, directed)
}

// DirectedConfigModel generates a power-law directed graph.
func DirectedConfigModel(r *Rand, n int, alpha float64, kmin, kmax int) *Graph {
	return gen.DirectedConfigModel(r, n, alpha, kmin, kmax)
}

// GAB builds the paper's two-BA stress graph (Section 6.1).
func GAB(r *Rand, nEach int) *Graph { return gen.GAB(r, nEach) }

// StochasticBlockModel generates k equal communities with within/cross
// edge probabilities pIn and pOut.
func StochasticBlockModel(r *Rand, n, k int, pIn, pOut float64) *Graph {
	return gen.StochasticBlockModel(r, n, k, pIn, pOut)
}

// PlantedPartition is the heterogeneous block model (per-community
// densities).
func PlantedPartition(r *Rand, n int, pIns []float64, pOut float64) *Graph {
	return gen.PlantedPartition(r, n, pIns, pOut)
}

// WattsStrogatz generates a small-world ring lattice with rewiring
// probability beta.
func WattsStrogatz(r *Rand, n, k int, beta float64) *Graph {
	return gen.WattsStrogatz(r, n, k, beta)
}

// DatasetByName builds one of the synthetic stand-in datasets
// ("flickr", "lj", "youtube", "internet-rlt", "hepth", "gab").
func DatasetByName(name string, r *Rand, scale Scale) (Dataset, error) {
	return gen.ByName(name, r, scale)
}

// PlantGroups assigns Zipf-popularity, degree-correlated group labels.
func PlantGroups(r *Rand, g *Graph, numGroups, totalMemberships int, s float64) *GroupLabels {
	return gen.PlantGroups(r, g, numGroups, totalMemberships, s)
}

// Graph I/O (internal/graphio).

// SaveGraph writes g to path, picking the format by extension: binary
// for ".fgrb", a mappable CSR segment for ".fcsr", text otherwise.
func SaveGraph(path string, g *Graph) error { return graphio.SaveFile(path, g) }

// LoadGraph reads a graph from path, picking the format by extension
// as in SaveGraph (.fcsr segments are heap-parsed and fully validated;
// OpenGraphSegment is the zero-copy alternative).
func LoadGraph(path string) (*Graph, error) { return graphio.LoadFile(path) }

// Binary CSR graph segments (.fcsr): checksummed, mappable files
// holding a graph's CSR arrays (and optional group labels) verbatim,
// so opening one is O(header + page-in) instead of O(parse).
type (
	// GraphSegment is an opened .fcsr segment: the graph (and labels,
	// when embedded) reading directly from the memory-mapped file, plus
	// the header metadata. Close unmaps; the graph must not be used
	// after.
	GraphSegment = graphio.FCSRFile
	// GraphSegmentInfo is the .fcsr header metadata: sizes and layout
	// facts readable without materializing the graph.
	GraphSegmentInfo = graphio.FCSRInfo
)

// WriteGraphSegment writes g — and gl's labels, when non-nil — to w in
// the .fcsr segment format.
func WriteGraphSegment(w io.Writer, g *Graph, gl *GroupLabels) error {
	return graphio.WriteFCSR(w, g, gl)
}

// ReadGraphSegment heap-parses an .fcsr segment, fully validating
// checksums and adjacency structure: the reader for untrusted bytes.
func ReadGraphSegment(r io.Reader) (*Graph, *GroupLabels, error) { return graphio.ReadFCSR(r) }

// OpenGraphSegment memory-maps the .fcsr segment at path and returns
// its graph zero-copy: the CSR arrays alias the mapping, so open cost
// is O(offset-array validation) and resident memory is only the pages
// the walk touches. Sampling over the mapped graph draws byte-identical
// sequences to the same graph on the heap.
func OpenGraphSegment(path string) (*GraphSegment, error) { return graphio.OpenFCSR(path) }

// StatGraphSegment reads only the segment's header: sizes without
// materialization, however large the file.
func StatGraphSegment(path string) (GraphSegmentInfo, error) { return graphio.StatFCSR(path) }

// Networked crawling (internal/netgraph).
type (
	// GraphServer serves a catalog of graphs over HTTP (see cmd/graphd).
	GraphServer = netgraph.Server
	// GraphCatalog is a concurrent registry of named hosted graphs; it
	// implements JobResolver so one job worker pool can serve every
	// hosted graph, pinning a graph while jobs run on it.
	GraphCatalog = netgraph.Catalog
	// GraphInfo describes one hosted graph (the GET /v1/graphs entry).
	GraphInfo = netgraph.GraphInfo
	// GraphServerOption configures a GraphServer.
	GraphServerOption = netgraph.ServerOption
	// GraphClient crawls a remote graph; it implements Source,
	// BatchSource and EdgeView so samplers and estimators run against it
	// unmodified. Its vertex cache is a bounded LRU and concurrent
	// fetches of one vertex are deduplicated.
	GraphClient = netgraph.Client
	// GraphClientOption configures a GraphClient.
	GraphClientOption = netgraph.Option
	// GraphServerStats are the counters served at GET /v1/stats.
	GraphServerStats = netgraph.ServerStats
	// GraphHealth is the GET /healthz liveness summary.
	GraphHealth = netgraph.Health
)

// Catalog errors, mapped to HTTP statuses by the server (404, 409).
var (
	// ErrUnknownGraph reports a name the catalog does not host.
	ErrUnknownGraph = netgraph.ErrUnknownGraph
	// ErrGraphBusy reports an eviction refused while jobs pin the graph.
	ErrGraphBusy = netgraph.ErrGraphBusy
	// ErrDuplicateGraph reports an Add under an already-hosted name.
	ErrDuplicateGraph = netgraph.ErrDuplicateGraph
)

// NewGraphCatalog returns an empty catalog of named graphs; the first
// graph added becomes the default for unqualified requests.
func NewGraphCatalog() *GraphCatalog { return netgraph.NewCatalog() }

// NewCatalogGraphServer creates an HTTP handler over an existing
// catalog, for multi-graph deployments (single-graph callers use
// NewGraphServer).
func NewCatalogGraphServer(cat *GraphCatalog, opts ...GraphServerOption) *GraphServer {
	return netgraph.NewCatalogServer(cat, opts...)
}

// Sampling-job service (internal/jobs): run many concurrent,
// cancellable, checkpoint-resumable sampling jobs over one shared graph.
// Mount it into a GraphServer with WithServerJobs; drive it remotely
// through GraphClient.SubmitJob / Job / CancelJob / WaitJob.
type (
	// JobManager owns the job table, bounded queue and worker pool.
	JobManager = jobs.Manager
	// JobSpec describes one sampling job (method, walkers, budget, seed,
	// estimate, checkpoint interval).
	JobSpec = jobs.Spec
	// JobStatus is a job's externally visible snapshot.
	JobStatus = jobs.Status
	// JobState is a job's lifecycle state.
	JobState = jobs.State
	// JobOption configures a JobManager.
	JobOption = jobs.Option
	// JobResolver maps a JobSpec's Graph name to its sampling source
	// (GraphCatalog implements it).
	JobResolver = jobs.Resolver
	// JobMethod describes one registered sampling method: builder,
	// required source facets and emitted observation kinds.
	JobMethod = jobs.Method
	// JobMethodRegistry is a named catalog of sampling methods ("fs",
	// "dfs", "single", "multiple", "mhrw", "rv", "re", "jump", plus
	// custom registrations).
	JobMethodRegistry = jobs.MethodRegistry
)

// DefaultJobMethods returns the process-wide method registry holding
// the paper's comparison set of sampling methods.
func DefaultJobMethods() *JobMethodRegistry { return jobs.DefaultMethods() }

// NewJobMethodRegistry returns a fresh method registry pre-populated
// with the built-in methods; Register adds custom ones.
func NewJobMethodRegistry() *JobMethodRegistry { return jobs.NewMethodRegistry() }

// WithJobMethods routes a JobManager's Spec.Method validation and
// construction through reg instead of DefaultJobMethods().
func WithJobMethods(reg *JobMethodRegistry) JobOption { return jobs.WithMethods(reg) }

// Job lifecycle states.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobPaused    = jobs.StatePaused
	JobDone      = jobs.StateDone
	JobFailed    = jobs.StateFailed
	JobCancelled = jobs.StateCancelled
)

// JobStopBudget is the StopReason of a done job that ran its full
// budget (no stop rule, or one that never fired).
const JobStopBudget = jobs.StopReasonBudget

// Live estimation subsystem (internal/live): attach registered
// streaming estimators, an online convergence monitor (CI half-width,
// effective sample size, Gelman-Rubin across walkers) and adaptive
// stop rules to any sampling run. Jobs carry one automatically; local
// runs drive a LiveRuntime from the sampler's emit callback.
type (
	// LiveEstimator is one streaming estimator built by an
	// EstimatorRegistry: a moment kernel plus cumulative sufficient
	// statistics, serializable for checkpoints.
	LiveEstimator = live.Estimator
	// EstimatorRegistry is a named catalog of estimator builders
	// ("avgdegree", "clustering", "assortativity", "degreedist",
	// "groupdensity", plus custom registrations).
	EstimatorRegistry = live.Registry
	// EstimatorBuilder constructs an estimator bound to a source.
	EstimatorBuilder = live.Builder
	// ConvergenceMonitor attaches batch-means confidence intervals and
	// walkstats mixing diagnostics to an estimator's stream.
	ConvergenceMonitor = live.Monitor
	// MonitorConfig sizes a ConvergenceMonitor's bounded state.
	MonitorConfig = live.MonitorConfig
	// LiveRuntime ties estimator + monitor + stop rule into the unit a
	// sampling run drives; it serializes whole for lossless resume.
	LiveRuntime = live.Runtime
	// StopRule is a parsed adaptive-stopping condition (nil =
	// budget-only).
	StopRule = live.StopRule
	// StopMetric names a monitor quantity a StopRule thresholds.
	StopMetric = live.Metric
	// EstimateReport is a point-in-time view of a live estimation:
	// value, CI, diagnostics, stop verdict.
	EstimateReport = live.Report
	// EstimateInterval is a confidence interval around an estimate.
	EstimateInterval = live.Interval
	// EstimateDiagnostics are a monitor's convergence diagnostics.
	EstimateDiagnostics = live.Diagnostics
	// EstimateVector is the vector-valued part of an estimate (degree
	// CCDF, group densities).
	EstimateVector = live.VectorResult
	// GroupSource is the source facet the group-density estimator
	// needs (per-vertex group labels).
	GroupSource = live.GroupSource
)

// Stop-rule metrics.
const (
	StopMetricCIHalfWidth = live.MetricCIHalfWidth
	StopMetricCIRel       = live.MetricCIRel
	StopMetricESS         = live.MetricESS
	StopMetricRHat        = live.MetricRHat
)

// DefaultEstimators returns the process-wide estimator registry
// holding the built-in live estimators.
func DefaultEstimators() *EstimatorRegistry { return live.Default() }

// NewEstimatorRegistry returns a fresh registry pre-populated with the
// built-in estimators; Register adds custom ones.
func NewEstimatorRegistry() *EstimatorRegistry { return live.NewRegistry() }

// ParseStopRule parses an adaptive-stopping rule such as
// "ci_halfwidth<=0.01", "ci_rel<=0.005", "ess>=5000" or "rhat<=1.05".
// The empty string parses to nil: budget-only.
func ParseStopRule(s string) (*StopRule, error) { return live.ParseStopRule(s) }

// NewConvergenceMonitor creates a convergence monitor (zero config
// fields take defaults).
func NewConvergenceMonitor(cfg MonitorConfig) *ConvergenceMonitor { return live.NewMonitor(cfg) }

// NewLiveRuntime binds an estimator and monitor with an optional stop
// rule; drive it with Observe from a sampler's emit callback.
func NewLiveRuntime(est *LiveEstimator, mon *ConvergenceMonitor, rule *StopRule) *LiveRuntime {
	return live.NewRuntime(est, mon, rule)
}

// WithJobEstimators routes a JobManager's Spec.Estimate validation and
// construction through reg instead of DefaultEstimators().
func WithJobEstimators(reg *EstimatorRegistry) JobOption { return jobs.WithEstimators(reg) }

// NewJobManager creates a sampling-job manager over src and starts its
// worker pool. Stop it with (*JobManager).Stop, which checkpoints
// running jobs.
func NewJobManager(src Source, opts ...JobOption) (*JobManager, error) {
	return jobs.NewManager(src, opts...)
}

// WithJobWorkers sizes the job worker pool (default 4).
func WithJobWorkers(n int) JobOption { return jobs.WithWorkers(n) }

// WithJobQueueCapacity bounds the submitted-but-not-running queue.
func WithJobQueueCapacity(n int) JobOption { return jobs.WithQueueCapacity(n) }

// WithJobCheckpointDir persists job checkpoints under dir so jobs
// survive a restart and resume byte-identically.
func WithJobCheckpointDir(dir string) JobOption { return jobs.WithCheckpointDir(dir) }

// WithJobResolver routes each job's Graph name through r — typically a
// GraphCatalog — so one worker pool serves many hosted graphs.
func WithJobResolver(r JobResolver) JobOption { return jobs.WithResolver(r) }

// WithServerJobs mounts the job endpoints (POST /v1/jobs et al.) backed
// by m into a GraphServer.
func WithServerJobs(m *JobManager) GraphServerOption { return netgraph.WithJobs(m) }

// NewGraphServer creates an HTTP handler serving g (groups may be nil).
func NewGraphServer(name string, g *Graph, groups *GroupLabels, opts ...GraphServerOption) *GraphServer {
	return netgraph.NewServer(name, g, groups, opts...)
}

// WithServerLatency injects a fixed per-request latency, modeling a slow
// OSN API.
func WithServerLatency(d time.Duration) GraphServerOption { return netgraph.WithLatency(d) }

// DialGraph connects to a graph served at baseURL.
func DialGraph(baseURL string, opts ...GraphClientOption) (*GraphClient, error) {
	return netgraph.Dial(baseURL, nil, opts...)
}

// WithCacheCapacity bounds the client's vertex LRU cache.
func WithCacheCapacity(n int) GraphClientOption { return netgraph.WithCacheCapacity(n) }

// WithBatchSize sets the client's prefetch batch size.
func WithBatchSize(n int) GraphClientOption { return netgraph.WithBatchSize(n) }

// WithClientContext attaches ctx to every HTTP request the client
// issues; cancelling it aborts in-flight vertex fetches.
func WithClientContext(ctx context.Context) GraphClientOption { return netgraph.WithContext(ctx) }

// WithClientGraph targets the named hosted graph on a multi-graph
// server ("" = the server's default graph).
func WithClientGraph(name string) GraphClientOption { return netgraph.WithGraph(name) }

// WithClientPollInterval sets WaitJob's polling interval for servers
// without SSE job-event streaming.
func WithClientPollInterval(d time.Duration) GraphClientOption {
	return netgraph.WithPollInterval(d)
}

// Resilience middleware (internal/netgraph): the client-side chain that
// survives a real OSN API, and the server-side deterministic fault
// injection that proves it.
type (
	// ResilienceConfig configures the client middleware chain
	// Retry → CircuitBreak → RateLimit → Hedge → AttemptTimeout.
	ResilienceConfig = netgraph.ResilienceConfig
	// FaultSpec configures seeded, deterministic server-side fault
	// injection (429/5xx bursts, dropped connections, slow responses,
	// flap schedules).
	FaultSpec = netgraph.FaultSpec
)

// ErrCircuitOpen is returned (wrapped) when the client's circuit
// breaker rejects a request without sending it.
var ErrCircuitOpen = netgraph.ErrCircuitOpen

// WithClientResilience wraps the client's transport in the resilience
// middleware chain; breaker/limiter state rides session checkpoints so
// resumed crawls do not thundering-herd a recovering API.
func WithClientResilience(cfg ResilienceConfig) GraphClientOption {
	return netgraph.WithResilience(cfg)
}

// WithServerFaults injects seeded, deterministic faults on the server's
// data-plane endpoints, with injected counts in /v1/stats and /metrics.
func WithServerFaults(spec FaultSpec) GraphServerOption { return netgraph.WithFaults(spec) }

// ParseFaultSpec parses the graphd -faults flag syntax, e.g.
// "rate=0.1,seed=7,statuses=429+500+503,burst=3,drop=0.2".
func ParseFaultSpec(s string) (FaultSpec, error) { return netgraph.ParseFaultSpec(s) }

// Error metrics (internal/stats).
type (
	// ScalarError accumulates Monte Carlo estimates of a scalar with
	// known truth (bias, NMSE).
	ScalarError = stats.ScalarError
	// VectorError is the per-index variant (NMSE/CNMSE curves).
	VectorError = stats.VectorError
	// Welford is a numerically stable running mean/variance.
	Welford = stats.Welford
)

// NewScalarError creates a scalar error accumulator.
func NewScalarError(truth float64) *ScalarError { return stats.NewScalarError(truth) }

// NewVectorError creates a vector error accumulator.
func NewVectorError(truth []float64) *VectorError { return stats.NewVectorError(truth) }

// Analytical error model of Section 3 (equations (3) and (4)).
type (
	// DegreeNMSEModel predicts NMSE for random edge and vertex sampling.
	DegreeNMSEModel = estimate.DegreeNMSEModel
)

// NewDegreeNMSEModel builds the Section-3 error model for g.
func NewDegreeNMSEModel(g *Graph, kind DegreeKind) *DegreeNMSEModel {
	return estimate.NewDegreeNMSEModel(g, kind)
}

// PredictedEdgeNMSE is equation (3).
func PredictedEdgeNMSE(pi, b float64) float64 { return estimate.PredictedEdgeNMSE(pi, b) }

// PredictedVertexNMSE is equation (4).
func PredictedVertexNMSE(theta, b float64) float64 { return estimate.PredictedVertexNMSE(theta, b) }

// Convergence diagnostics (internal/walkstats).

// GelmanRubin computes the potential scale reduction factor R̂ over
// several chains.
func GelmanRubin(chains [][]float64) (float64, error) { return walkstats.GelmanRubin(chains) }

// Geweke computes the stationarity z-score over early/late windows.
func Geweke(xs []float64, firstFrac, lastFrac float64) (float64, error) {
	return walkstats.Geweke(xs, firstFrac, lastFrac)
}

// EffectiveSampleSize estimates the independent-sample worth of a
// correlated walk series.
func EffectiveSampleSize(xs []float64) (float64, error) {
	return walkstats.EffectiveSampleSize(xs)
}

// Autocorrelation returns lag-k autocorrelations for k = 0..maxLag.
func Autocorrelation(xs []float64, maxLag int) ([]float64, error) {
	return walkstats.Autocorrelation(xs, maxLag)
}

// MeanCI returns a walk series' mean with a ~95% batch-means confidence
// half-width — error bars without ground truth.
func MeanCI(xs []float64) (mean, halfWidth float64, err error) {
	return walkstats.MeanCI(xs)
}

// Observability (internal/obs): structured logging, trace IDs, span
// timelines, Prometheus latency histograms and a pprof debug mux,
// wired through the graph server, client and job manager.
type (
	// TraceEvent is one entry in a span timeline.
	TraceEvent = obs.Event
	// TraceTimeline is a bounded in-memory ring of trace events.
	TraceTimeline = obs.Timeline
	// JobTrace is a job's span timeline as served at
	// GET /v1/jobs/{id}/trace: lifecycle transitions, checkpoints and
	// the crawl retry/hedge/breaker events the job's source emitted.
	JobTrace = jobs.Trace
	// LatencyHistogram is a fixed-bucket Prometheus-style histogram.
	LatencyHistogram = obs.Histogram
	// LatencyHistogramVec partitions a LatencyHistogram by one label.
	LatencyHistogramVec = obs.HistogramVec
)

// TraceHeader is the HTTP header that propagates a trace ID between
// the graph client and server.
const TraceHeader = obs.TraceHeader

// ParseLogLevel parses a -log-level flag value (debug, info, warn,
// warning or error; case-insensitive) into a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLevel(s) }

// NewLogger builds a structured logger writing to w at the given
// level; format selects "json" or "text" (default) encoding.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// NopLogger returns a logger that discards everything and reports
// every level disabled — the silent default the server and job
// manager use when no logger is configured.
func NopLogger() *slog.Logger { return obs.NopLogger() }

// NewTraceID mints a 16-hex-character random trace ID.
func NewTraceID() string { return obs.NewTraceID() }

// WithTraceID returns ctx carrying the trace ID; the graph client
// stamps it on every outbound request as the TraceHeader.
func WithTraceID(ctx context.Context, id string) context.Context {
	return obs.WithTraceID(ctx, id)
}

// TraceIDFromContext returns the trace ID carried by ctx ("" when
// none).
func TraceIDFromContext(ctx context.Context) string { return obs.TraceID(ctx) }

// DebugMux returns a mux serving net/http/pprof under /debug/pprof/,
// for a separate (typically loopback-only) listener — graphd's -pprof
// flag mounts it.
func DebugMux() *http.ServeMux { return obs.DebugMux() }

// EscapeMetricLabel escapes a Prometheus label value (backslash,
// quote, newline).
func EscapeMetricLabel(s string) string { return obs.EscapeLabel(s) }

// CheckMetricsExposition validates Prometheus text exposition output:
// syntax, and histogram bucket monotonicity/completeness.
func CheckMetricsExposition(data []byte) error { return obs.CheckExposition(data) }

// WithServerLogging attaches a structured logger to the graph server:
// one Info record per request (method, route, status, duration,
// trace ID) and Error records for recovered handler panics.
func WithServerLogging(l *slog.Logger) GraphServerOption { return netgraph.WithLogging(l) }

// WithJobLogger attaches a structured logger to the job manager: job
// lifecycle at Info, slab progress at Debug, persistence failures at
// Error, every record carrying the job and trace IDs.
func WithJobLogger(l *slog.Logger) JobOption { return jobs.WithLogger(l) }

// Paper-figure sweep service (internal/sweep): a deterministic DAG
// executor that reproduces a paper artifact (fig5, table2, ...) as a
// sweep of sampling jobs — method × run job nodes, per-method
// aggregation nodes, one figure node writing the JSON/CSV artifact and
// evaluating the paper's shape checks. Sweeps persist per-node
// manifests and resume after a restart without re-running done nodes,
// reproducing byte-identical artifacts. Mount into a GraphServer with
// WithServerSweeps; drive remotely through GraphClient.SubmitSweep /
// FollowSweep / SweepArtifact. See docs/EXPERIMENTS.md for the
// figure↔artifact↔endpoint map.
type (
	// SweepManager owns the sweep table, DAG scheduler and manifests.
	SweepManager = sweep.Manager
	// SweepSpec names the artifact to reproduce ("fig5", ..., or "all")
	// plus graph, seed, runs, parallelism and failure policy.
	SweepSpec = sweep.Spec
	// SweepStatus is a sweep's externally visible snapshot: state,
	// per-node statuses, artifacts and shape-check results.
	SweepStatus = sweep.Status
	// SweepState is a sweep's lifecycle state.
	SweepState = sweep.State
	// SweepNodeState is a DAG node's lifecycle state.
	SweepNodeState = sweep.NodeState
	// SweepNodeStatus is one DAG node's externally visible snapshot.
	SweepNodeStatus = sweep.NodeStatus
	// SweepArtifactInfo describes one written figure artifact (name,
	// size, digest).
	SweepArtifactInfo = sweep.ArtifactInfo
	// SweepCheckResult is one evaluated paper shape check.
	SweepCheckResult = sweep.CheckResult
	// SweepOption configures a SweepManager.
	SweepOption = sweep.Option
	// SweepGraphSource resolves a SweepSpec's Graph name to the graph
	// and labels the sweep's truth vectors are computed from
	// (GraphCatalog implements it).
	SweepGraphSource = sweep.GraphSource
	// SweepTrace is a sweep's span timeline as served at
	// GET /v1/sweeps/{id}/trace.
	SweepTrace = sweep.Trace
)

// Sweep lifecycle states.
const (
	SweepPending   = sweep.StatePending
	SweepRunning   = sweep.StateRunning
	SweepDone      = sweep.StateDone
	SweepFailed    = sweep.StateFailed
	SweepCancelled = sweep.StateCancelled
)

// Sweep DAG node states.
const (
	SweepNodePending = sweep.NodePending
	SweepNodeRunning = sweep.NodeRunning
	SweepNodeDone    = sweep.NodeDone
	SweepNodeFailed  = sweep.NodeFailed
	SweepNodeSkipped = sweep.NodeSkipped
)

// Sweep failure policies for SweepSpec.OnError.
const (
	// SweepFailFast cancels in-flight siblings on the first node
	// failure (the default).
	SweepFailFast = sweep.FailFast
	// SweepContinue lets siblings finish; only dependents of the failed
	// node are skipped.
	SweepContinue = sweep.Continue
)

// SweepArtifacts returns the artifact ids the sweep service can
// reproduce, in paper order.
func SweepArtifacts() []string { return sweep.Supported() }

// NewSweepManager creates a sweep manager executing its job nodes on
// jm and resolving graphs through src. Stop it with
// (*SweepManager).Stop — before stopping jm — which freezes running
// sweeps resumably.
func NewSweepManager(jm *JobManager, src SweepGraphSource, opts ...SweepOption) (*SweepManager, error) {
	return sweep.NewManager(jm, src, opts...)
}

// WithSweepDir persists per-sweep manifests under dir so sweeps
// survive a restart and resume without re-running done nodes.
func WithSweepDir(dir string) SweepOption { return sweep.WithDir(dir) }

// WithSweepArtifactDir writes figure artifacts under dir (default:
// a sibling "artifacts" directory of the manifest dir).
func WithSweepArtifactDir(dir string) SweepOption { return sweep.WithArtifactDir(dir) }

// WithSweepParallel bounds how many job nodes run concurrently per
// sweep (default: the job manager's worker count).
func WithSweepParallel(n int) SweepOption { return sweep.WithParallel(n) }

// WithSweepLogger attaches a structured logger to the sweep manager.
func WithSweepLogger(l *slog.Logger) SweepOption { return sweep.WithLogger(l) }

// WithServerSweeps mounts the sweep endpoints (POST /v1/sweeps et al.)
// backed by m into a GraphServer.
func WithServerSweeps(m *SweepManager) GraphServerOption { return netgraph.WithSweeps(m) }
